//! Basic-block control-flow graphs lowered from the DSL AST.
//!
//! The optimizer's passes ([`crate::opt`]) need a flow-sensitive view of
//! a function: where checks happen, in what order, and which program
//! points can reach which. The AST's structured statements lower to a
//! small CFG whose blocks carry a linear **event** stream — one event per
//! variable use, pointer-check site, assignment, store, call, touch, or
//! return, in evaluation order. Spans survive lowering so every verdict
//! the optimizer emits points back at source.
//!
//! A pointer path `base->f1->…->fk` is `k` check sites: site `j` checks
//! the object reached by `base->f1->…->fj-1` before loading (or, for the
//! final step of a store, writing) field `fj`. This mirrors the runtime,
//! where each arrow is one `read_ptr`/`write` with its own mechanism
//! test.

use crate::ast::{Expr, FuncDef, Program, Stmt};
use crate::diag::Span;

/// One pointer-check site: the test the compiler inserts before a
/// dereference (paper §3, "inserts the lookup before each cached deref" —
/// or the residence test before a migrated one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    /// The pointer variable the path starts from.
    pub base: String,
    /// Fields navigated before the accessed one (empty for `base->f`).
    pub path: Vec<String>,
    /// The field this site accesses.
    pub field: String,
    /// Source location of the dereference.
    pub span: Span,
    /// True when the access is the final step of a store.
    pub is_store: bool,
}

impl Site {
    /// Render as `base->f1->…->field`.
    pub fn render(&self) -> String {
        let mut s = self.base.clone();
        for f in &self.path {
            s.push_str("->");
            s.push_str(f);
        }
        s.push_str("->");
        s.push_str(&self.field);
        s
    }
}

/// One step of a block's event stream, in evaluation order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A check site fires (index into [`Cfg::sites`]).
    Check(usize),
    /// A variable's value is read.
    Use { var: String },
    /// A variable is (re)assigned. `future_of` names the callee when the
    /// right-hand side is a `futurecall`.
    Assign {
        var: String,
        span: Span,
        future_of: Option<String>,
    },
    /// A store through a pointer path writes `field` (the address
    /// computation's checks precede this event).
    Store { field: String, span: Span },
    /// A call (plain or `futurecall`) to `func`.
    Call {
        func: String,
        future: bool,
        span: Span,
    },
    /// `touch var;` — join with the future bound to `var`.
    Touch { var: String, span: Span },
    /// `return;` — terminates the block.
    Return,
}

/// A basic block.
#[derive(Clone, Debug, Default)]
pub struct Block {
    pub id: usize,
    pub events: Vec<Event>,
    pub succs: Vec<usize>,
    pub preds: Vec<usize>,
    /// True for `while` condition blocks — the only legal backedge
    /// targets.
    pub loop_head: bool,
    /// Pre-order indices of the AST statements whose events start in this
    /// block (used by the well-formedness checks).
    pub stmts: Vec<usize>,
}

/// A function's control-flow graph. Block 0 is the entry.
#[derive(Clone, Debug)]
pub struct Cfg {
    pub func: String,
    pub blocks: Vec<Block>,
    pub sites: Vec<Site>,
}

struct Builder {
    blocks: Vec<Block>,
    sites: Vec<Site>,
    cur: usize,
    next_stmt: usize,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        let id = self.blocks.len();
        self.blocks.push(Block {
            id,
            ..Block::default()
        });
        id
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.blocks[from].succs.push(to);
        self.blocks[to].preds.push(from);
    }

    fn emit(&mut self, ev: Event) {
        let cur = self.cur;
        self.blocks[cur].events.push(ev);
    }

    /// Lower an expression into events in evaluation order (left to
    /// right, arguments before the call itself).
    fn lower_expr(&mut self, e: &Expr) {
        match e {
            Expr::Int(_) | Expr::Null => {}
            Expr::Var(v) => self.emit(Event::Use { var: v.clone() }),
            Expr::Path { base, fields, span } => {
                self.emit(Event::Use { var: base.clone() });
                for j in 0..fields.len() {
                    let sid = self.sites.len();
                    self.sites.push(Site {
                        base: base.clone(),
                        path: fields[..j].to_vec(),
                        field: fields[j].clone(),
                        span: *span,
                        is_store: false,
                    });
                    self.emit(Event::Check(sid));
                }
            }
            Expr::Call {
                func,
                args,
                future,
                span,
            } => {
                for a in args {
                    self.lower_expr(a);
                }
                self.emit(Event::Call {
                    func: func.clone(),
                    future: *future,
                    span: *span,
                });
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.lower_expr(lhs);
                self.lower_expr(rhs);
            }
            Expr::Unary { arg, .. } => self.lower_expr(arg),
        }
    }

    /// Lower a statement list into the current block, creating successor
    /// blocks as control flow demands. Returns whether control can fall
    /// through past the list's end.
    fn lower_stmts(&mut self, stmts: &[Stmt]) -> bool {
        let mut falls = true;
        for s in stmts {
            if !falls {
                // Dead code after a return: give it its own (unreachable)
                // block so the exactly-one-block invariant holds.
                self.cur = self.new_block();
                falls = true;
            }
            let idx = self.next_stmt;
            self.next_stmt += 1;
            let cur = self.cur;
            self.blocks[cur].stmts.push(idx);
            match s {
                Stmt::Assign { dst, src, span } => {
                    self.lower_expr(src);
                    let future_of = match src {
                        Expr::Call {
                            func, future: true, ..
                        } => Some(func.clone()),
                        _ => None,
                    };
                    self.emit(Event::Assign {
                        var: dst.clone(),
                        span: *span,
                        future_of,
                    });
                }
                Stmt::Store {
                    base,
                    fields,
                    src,
                    span,
                } => {
                    self.lower_expr(src);
                    self.emit(Event::Use { var: base.clone() });
                    for j in 0..fields.len() {
                        let sid = self.sites.len();
                        self.sites.push(Site {
                            base: base.clone(),
                            path: fields[..j].to_vec(),
                            field: fields[j].clone(),
                            span: *span,
                            is_store: j == fields.len() - 1,
                        });
                        self.emit(Event::Check(sid));
                    }
                    self.emit(Event::Store {
                        field: fields.last().expect("store has a field").clone(),
                        span: *span,
                    });
                }
                Stmt::If { cond, then_, else_ } => {
                    self.lower_expr(cond);
                    let cond_end = self.cur;
                    let then_b = self.new_block();
                    let else_b = self.new_block();
                    self.edge(cond_end, then_b);
                    self.edge(cond_end, else_b);
                    self.cur = then_b;
                    let ft_then = self.lower_stmts(then_);
                    let then_end = self.cur;
                    self.cur = else_b;
                    let ft_else = self.lower_stmts(else_);
                    let else_end = self.cur;
                    if ft_then || ft_else {
                        let merge = self.new_block();
                        if ft_then {
                            self.edge(then_end, merge);
                        }
                        if ft_else {
                            self.edge(else_end, merge);
                        }
                        self.cur = merge;
                    } else {
                        falls = false;
                    }
                }
                Stmt::While { cond, body } => {
                    let head = self.new_block();
                    self.blocks[head].loop_head = true;
                    let prev = self.cur;
                    self.edge(prev, head);
                    self.cur = head;
                    self.lower_expr(cond);
                    let body_b = self.new_block();
                    let exit_b = self.new_block();
                    self.edge(head, body_b);
                    self.edge(head, exit_b);
                    self.cur = body_b;
                    let ft_body = self.lower_stmts(body);
                    if ft_body {
                        let body_end = self.cur;
                        self.edge(body_end, head);
                    }
                    self.cur = exit_b;
                }
                Stmt::ExprStmt(e) => self.lower_expr(e),
                Stmt::Touch { var, span } => self.emit(Event::Touch {
                    var: var.clone(),
                    span: *span,
                }),
                Stmt::Return(e) => {
                    if let Some(e) = e {
                        self.lower_expr(e);
                    }
                    self.emit(Event::Return);
                    falls = false;
                }
            }
        }
        falls
    }
}

/// Lower one function to its CFG.
pub fn lower(func: &FuncDef) -> Cfg {
    let mut b = Builder {
        blocks: Vec::new(),
        sites: Vec::new(),
        cur: 0,
        next_stmt: 0,
    };
    b.new_block();
    let falls = b.lower_stmts(&func.body);
    if falls {
        let cur = b.cur;
        b.blocks[cur].events.push(Event::Return);
    }
    let mut cfg = Cfg {
        func: func.name.clone(),
        blocks: b.blocks,
        sites: b.sites,
    };
    cfg.prune();
    cfg
}

/// Lower every function of a program.
pub fn lower_program(prog: &Program) -> Vec<Cfg> {
    prog.funcs.iter().map(lower).collect()
}

impl Cfg {
    /// Reachability from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// DFS back edges `(from, to)`: edges whose target is on the current
    /// DFS stack. In a reducible CFG these are exactly the loop backedges.
    pub fn back_edges(&self) -> Vec<(usize, usize)> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; self.blocks.len()];
        let mut out = Vec::new();
        // Iterative DFS: (block, next-successor-index).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = Color::Grey;
        while let Some(&(b, i)) = stack.last() {
            if i < self.blocks[b].succs.len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let s = self.blocks[b].succs[i];
                match color[s] {
                    Color::Grey => out.push((b, s)),
                    Color::White => {
                        color[s] = Color::Grey;
                        stack.push((s, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[b] = Color::Black;
                stack.pop();
            }
        }
        out
    }

    /// Drop unreachable blocks that carry no events and no statements
    /// (structural leftovers of lowering), renumbering the rest.
    fn prune(&mut self) {
        let reach = self.reachable();
        let keep: Vec<bool> = self
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| reach[i] || !b.events.is_empty() || !b.stmts.is_empty())
            .collect();
        if keep.iter().all(|&k| k) {
            return;
        }
        let mut remap = vec![usize::MAX; self.blocks.len()];
        let mut next = 0;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = next;
                next += 1;
            }
        }
        let old = std::mem::take(&mut self.blocks);
        for (i, mut b) in old.into_iter().enumerate() {
            if !keep[i] {
                continue;
            }
            b.id = remap[i];
            b.succs = b
                .succs
                .iter()
                .filter(|&&s| keep[s])
                .map(|&s| remap[s])
                .collect();
            b.preds = b
                .preds
                .iter()
                .filter(|&&p| keep[p])
                .map(|&p| remap[p])
                .collect();
            self.blocks.push(b);
        }
    }

    /// Structural invariants, checked against the source function:
    /// 1. every AST statement lands in exactly one block;
    /// 2. all blocks are reachable from the entry;
    /// 3. DFS back edges target only loop-head blocks.
    pub fn check_well_formed(&self, func: &FuncDef) -> Result<(), String> {
        let mut count = 0usize;
        crate::ast::walk_stmts(&func.body, &mut |_| count += 1);
        let mut placed: Vec<usize> = self
            .blocks
            .iter()
            .flat_map(|b| b.stmts.iter().copied())
            .collect();
        placed.sort_unstable();
        let expect: Vec<usize> = (0..count).collect();
        if placed != expect {
            return Err(format!(
                "{}: {} statements, but blocks hold indices {:?}",
                self.func, count, placed
            ));
        }
        let reach = self.reachable();
        if let Some(b) = reach.iter().position(|&r| !r) {
            return Err(format!("{}: block {} unreachable", self.func, b));
        }
        for (from, to) in self.back_edges() {
            if !self.blocks[to].loop_head {
                return Err(format!(
                    "{}: back edge {} -> {} targets a non-loop-head",
                    self.func, from, to
                ));
            }
        }
        for b in &self.blocks {
            for &s in &b.succs {
                if !self.blocks[s].preds.contains(&b.id) {
                    return Err(format!("{}: edge {} -> {s} not mirrored", self.func, b.id));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cfgs(src: &str) -> Vec<(FuncDef, Cfg)> {
        let prog = parse(src).unwrap();
        prog.funcs.iter().map(|f| (f.clone(), lower(f))).collect()
    }

    const TORTURE_SRC: &str = r#"
        struct tree { tree *left; tree *right; int val; };
        int Mixed(tree *t, int n) {
            int acc = 0;
            while (t != null) {
                if (t->val < n) {
                    acc = acc + t->val;
                    t = t->left;
                } else {
                    while (n > 0) {
                        n = n - 1;
                    }
                    t = t->right;
                }
            }
            if (acc > 100) { return acc; } else { return 0; }
        }
        int Early(tree *t) {
            if (t == null) { return 0; }
            int v = futurecall Early(t->left);
            touch v;
            return v + t->val;
        }
    "#;

    #[test]
    fn every_statement_in_exactly_one_block() {
        for (f, cfg) in cfgs(TORTURE_SRC) {
            cfg.check_well_formed(&f).unwrap();
        }
    }

    #[test]
    fn all_blocks_reachable_and_backedges_at_loop_heads() {
        for (f, cfg) in cfgs(TORTURE_SRC) {
            cfg.check_well_formed(&f).unwrap();
            // Mixed has two loops: exactly two back edges, both to heads.
            if f.name == "Mixed" {
                let be = cfg.back_edges();
                assert_eq!(be.len(), 2, "two while loops");
                for (_, to) in be {
                    assert!(cfg.blocks[to].loop_head);
                }
            }
        }
    }

    #[test]
    fn both_branches_returning_leaves_no_dangling_merge() {
        let (f, cfg) = cfgs(
            r#"
            struct t { t *n; };
            int f(t *p) {
                if (p == null) { return 0; } else { return 1; }
            }
        "#,
        )
        .pop()
        .unwrap();
        cfg.check_well_formed(&f).unwrap();
        // No block falls through past the if: every reachable leaf block
        // ends in Return.
        for b in &cfg.blocks {
            if b.succs.is_empty() {
                assert_eq!(b.events.last(), Some(&Event::Return));
            }
        }
    }

    #[test]
    fn path_lowering_emits_one_site_per_arrow() {
        let (_, cfg) = cfgs(
            r#"
            struct t { t *n; int v; };
            int f(t *p) { return p->n->n->v; }
        "#,
        )
        .pop()
        .unwrap();
        assert_eq!(cfg.sites.len(), 3);
        assert_eq!(cfg.sites[0].path.len(), 0);
        assert_eq!(cfg.sites[1].path, vec!["n".to_string()]);
        assert_eq!(cfg.sites[2].path, vec!["n".to_string(), "n".to_string()]);
        assert_eq!(cfg.sites[2].field, "v");
        assert_eq!(cfg.sites[0].render(), "p->n");
        assert_eq!(cfg.sites[2].render(), "p->n->n->v");
        assert!(cfg.sites.iter().all(|s| s.span.is_real()));
    }

    #[test]
    fn store_marks_only_final_step() {
        let (_, cfg) = cfgs(
            r#"
            struct t { t *n; int v; };
            void f(t *p) { p->n->v = 3; }
        "#,
        )
        .pop()
        .unwrap();
        assert_eq!(cfg.sites.len(), 2);
        assert!(!cfg.sites[0].is_store);
        assert!(cfg.sites[1].is_store);
        // The Store event follows the final check.
        let evs = &cfg.blocks[0].events;
        let check_pos = evs.iter().position(|e| e == &Event::Check(1)).unwrap();
        assert!(matches!(evs[check_pos + 1], Event::Store { .. }));
    }

    #[test]
    fn futurecall_assign_records_callee() {
        let (_, cfg) = cfgs(
            r#"
            struct t { t *n; };
            int f(t *p) {
                int h = futurecall f(p->n);
                touch h;
                return h;
            }
        "#,
        )
        .pop()
        .unwrap();
        let assigns: Vec<_> = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.events)
            .filter_map(|e| match e {
                Event::Assign { var, future_of, .. } => Some((var.clone(), future_of.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(assigns, vec![("h".to_string(), Some("f".to_string()))]);
    }

    #[test]
    fn dead_code_after_return_keeps_statement_invariant() {
        let (f, cfg) = cfgs(
            r#"
            struct t { t *n; };
            int f(t *p) { return 0; int x = 1; return x; }
        "#,
        )
        .pop()
        .unwrap();
        // Statement coverage still holds; reachability is allowed to fail
        // (dead code), so check the first invariant directly.
        let mut count = 0usize;
        crate::ast::walk_stmts(&f.body, &mut |_| count += 1);
        let placed: usize = cfg.blocks.iter().map(|b| b.stmts.len()).sum();
        assert_eq!(placed, count);
    }
}
