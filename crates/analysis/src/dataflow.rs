//! A generic worklist solver over [`Cfg`]s.
//!
//! Passes describe themselves through the [`Analysis`] trait — a
//! direction, a lattice (top element + meet), a boundary fact for the
//! entry (forward) or the exit blocks (backward), and a monotone block
//! transfer function. The solver iterates to the greatest fixpoint under
//! the meet; *must* analyses use intersection-like meets with a
//! distinguished top, *may* analyses use union-like meets whose top is
//! the empty fact.

use crate::cfg::{Block, Cfg};

/// Propagation direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Backward,
}

/// One dataflow pass.
pub trait Analysis {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq;

    fn direction(&self) -> Direction;

    /// The fact at the graph boundary: the entry block's input (forward)
    /// or every exit block's input (backward).
    fn boundary(&self) -> Self::Fact;

    /// The optimistic initial value for interior block boundaries.
    fn top(&self) -> Self::Fact;

    /// Lattice meet, applied over all incoming edges.
    fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Monotone block transfer: fact at block input → fact at block
    /// output (input = start of block for forward, end for backward).
    fn transfer(&self, cfg: &Cfg, block: &Block, input: &Self::Fact) -> Self::Fact;
}

/// Converged facts per block.
pub struct Solution<F> {
    /// The transfer input of each block (block start for forward passes,
    /// block end for backward ones).
    pub input: Vec<F>,
    /// The transfer output of each block.
    pub output: Vec<F>,
    /// Transfer applications needed to converge (for the fixpoint tests).
    pub iterations: usize,
}

/// Iterate `analysis` over `cfg` to a fixpoint.
///
/// Panics if the pass fails to converge within `64 × |blocks|²` transfer
/// applications — only possible for a non-monotone transfer or an
/// infinite-height lattice, both programming errors in the pass.
pub fn solve<A: Analysis>(analysis: &A, cfg: &Cfg) -> Solution<A::Fact> {
    let n = cfg.blocks.len();
    let forward = analysis.direction() == Direction::Forward;
    fn sources(forward: bool, b: &Block) -> &[usize] {
        if forward {
            &b.preds
        } else {
            &b.succs
        }
    }
    fn dests(forward: bool, b: &Block) -> &[usize] {
        if forward {
            &b.succs
        } else {
            &b.preds
        }
    }
    let is_boundary = |b: &Block| sources(forward, b).is_empty() || (forward && b.id == 0);

    let mut input: Vec<A::Fact> = cfg.blocks.iter().map(|_| analysis.top()).collect();
    let mut output: Vec<A::Fact> = cfg.blocks.iter().map(|_| analysis.top()).collect();
    let mut on_list = vec![true; n];
    let mut worklist: Vec<usize> = if forward {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };
    let mut iterations = 0usize;
    let budget = 64 * n * n + 64;
    while let Some(b) = worklist.pop() {
        on_list[b] = false;
        let block = &cfg.blocks[b];
        let mut inp = if is_boundary(block) {
            analysis.boundary()
        } else {
            analysis.top()
        };
        for &s in sources(forward, block) {
            inp = analysis.meet(&inp, &output[s]);
        }
        let out = analysis.transfer(cfg, block, &inp);
        iterations += 1;
        assert!(
            iterations <= budget,
            "dataflow failed to converge on {} ({} blocks)",
            cfg.func,
            n
        );
        input[b] = inp;
        if out != output[b] {
            output[b] = out;
            for &d in dests(forward, block) {
                if !on_list[d] {
                    on_list[d] = true;
                    worklist.push(d);
                }
            }
        }
    }
    Solution {
        input,
        output,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Block, Cfg};

    /// Hand-built graph with a cross-linked double cycle — the classic
    /// irreducible shape (two entries into a loop), which structured
    /// lowering can never produce but the solver must still converge on:
    ///
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///      |\ /|
    ///      | X |
    ///      |/ \|
    ///      3   4      3 -> 4, 4 -> 3 (the irreducible cycle)
    ///       \ /
    ///        5
    /// ```
    fn torture_graph() -> Cfg {
        let edges: &[(usize, usize)] = &[
            (0, 1),
            (0, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (4, 3),
            (3, 5),
            (4, 5),
        ];
        let mut blocks: Vec<Block> = (0..6)
            .map(|id| Block {
                id,
                ..Block::default()
            })
            .collect();
        for &(a, b) in edges {
            blocks[a].succs.push(b);
            blocks[b].preds.push(a);
        }
        Cfg {
            func: "torture".into(),
            blocks,
            sites: Vec::new(),
        }
    }

    /// Gen/kill reaching-defs over bitsets: block b gens bit b; blocks 3
    /// and 4 additionally kill each other's bit, so facts keep flowing
    /// around the 3↔4 cycle until the fixpoint.
    struct Reach;
    impl Analysis for Reach {
        type Fact = u64;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> u64 {
            0
        }
        fn top(&self) -> u64 {
            0
        }
        fn meet(&self, a: &u64, b: &u64) -> u64 {
            a | b
        }
        fn transfer(&self, _cfg: &Cfg, block: &Block, input: &u64) -> u64 {
            let kill = match block.id {
                3 => 1 << 4,
                4 => 1 << 3,
                _ => 0,
            };
            (input & !kill) | (1 << block.id)
        }
    }

    #[test]
    fn irreducible_torture_graph_reaches_fixpoint() {
        let cfg = torture_graph();
        let sol = solve(&Reach, &cfg);
        // Fixpoint: every block's equations hold exactly.
        for b in &cfg.blocks {
            let mut inp = 0;
            for &p in &b.preds {
                inp |= sol.output[p];
            }
            assert_eq!(sol.input[b.id], inp, "input equation, block {}", b.id);
            assert_eq!(
                sol.output[b.id],
                Reach.transfer(&cfg, b, &inp),
                "transfer equation, block {}",
                b.id
            );
        }
        // Defs 0, 1, 2 and both cycle defs reach the exit (neither kill
        // wins on all paths); the solver converged well under the budget.
        assert_eq!(sol.input[5] & 0b111, 0b111);
        assert!(sol.iterations <= 64 * 36 + 64);
        assert!(sol.iterations >= cfg.blocks.len());
    }

    /// A must-style (intersection) pass on the same graph, with an
    /// explicit top: available-expressions-like bits gen'd at 1 and 2.
    struct Avail;
    impl Analysis for Avail {
        type Fact = Option<u64>;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> Option<u64> {
            Some(0)
        }
        fn top(&self) -> Option<u64> {
            None
        }
        fn meet(&self, a: &Option<u64>, b: &Option<u64>) -> Option<u64> {
            match (a, b) {
                (None, x) | (x, None) => *x,
                (Some(a), Some(b)) => Some(a & b),
            }
        }
        fn transfer(&self, _cfg: &Cfg, block: &Block, input: &Option<u64>) -> Option<u64> {
            let gen = match block.id {
                1 => 0b01,
                2 => 0b10,
                _ => 0,
            };
            input.map(|i| i | gen)
        }
    }

    #[test]
    fn must_meet_keeps_only_all_paths_facts() {
        let cfg = torture_graph();
        let sol = solve(&Avail, &cfg);
        // Bit 0 holds only through block 1, bit 1 only through block 2:
        // nothing is available on *every* path into the cycle or exit.
        assert_eq!(sol.input[3], Some(0));
        assert_eq!(sol.input[4], Some(0));
        assert_eq!(sol.input[5], Some(0));
        // But along the straight edges the gen survives.
        assert_eq!(sol.output[1], Some(0b01));
        assert_eq!(sol.output[2], Some(0b10));
    }

    /// Backward may-pass: liveness-style, boundary at the exit block.
    struct Live;
    impl Analysis for Live {
        type Fact = u64;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn boundary(&self) -> u64 {
            1 << 5
        }
        fn top(&self) -> u64 {
            0
        }
        fn meet(&self, a: &u64, b: &u64) -> u64 {
            a | b
        }
        fn transfer(&self, _cfg: &Cfg, block: &Block, input: &u64) -> u64 {
            input | (1 << block.id)
        }
    }

    #[test]
    fn backward_pass_propagates_from_exits() {
        let cfg = torture_graph();
        let sol = solve(&Live, &cfg);
        // The exit's boundary bit reaches every block against the edges.
        for b in 0..cfg.blocks.len() {
            assert_eq!(sol.output[b] & (1 << 5), 1 << 5, "block {b}");
        }
        // And the entry accumulates everything on some path below it.
        assert_eq!(sol.output[0], 0b111111);
    }
}
