//! The Olden compiler's mechanism-selection analysis (paper §4).
//!
//! This crate reproduces the compile-time side of the paper: given a
//! program in the restricted C subset (§2), decide **per pointer
//! dereference** whether to use computation migration or software caching.
//! The pipeline is the paper's three-step process:
//!
//! 1. **Path-affinities** (§4.1) — programmer hints on structure fields:
//!    the probability that a path along that field stays on-processor.
//!    Unannotated fields default to 70 %; hints may be wrong without
//!    affecting correctness (they only steer costs).
//! 2. **Update matrices** (§4.2) — per *control loop* (an iterative loop
//!    or the set of direct recursive calls of a function), a data-flow
//!    pass computes, for each pointer variable `s`, whether its value at
//!    the end of an iteration is a path from some variable `t`'s value at
//!    the start (`s' = t->F…`), and the affinity of that path. Diagonal
//!    entries identify **induction variables**. Join points average the
//!    affinities of updates present in both branches and omit updates
//!    present in only one; multiple recursive call sites combine as
//!    `1 − Π(1 − aᵢ)`; multi-field paths multiply affinities.
//! 3. **The heuristic** (§4.3) — pass 1 picks, per control loop, the
//!    induction variable with the strongest update and chooses migration
//!    for it when the affinity clears the 90 % threshold *or* the loop is
//!    parallelizable (contains futures); everything else caches. Loops
//!    with no induction variable inherit the parent's migration variable.
//!    Pass 2 forces caching where migration inside a parallel loop would
//!    serialize on a shared structure root (Figure 5's bottleneck).
//!
//! Programs are written in a small C-like DSL (see [`parser`]); the
//! examples from Figures 3–5 parse verbatim up to surface syntax. The
//! output is a [`heuristic::Selection`] mapping each control loop and
//! variable to a [`Mech`], which the benchmark crate feeds to the runtime.

pub mod ast;
pub mod cfg;
pub mod cost;
pub mod dataflow;
pub mod diag;
pub mod gen;
pub mod heuristic;
pub mod ir;
pub mod loops;
pub mod lower;
pub mod opt;
pub mod parser;
pub mod racecheck;
pub mod scheme;
pub mod typeck;
pub mod update;
pub mod verdicts;
pub mod verify;

pub use ast::{Expr, FieldDef, FuncDef, Program, Stmt, StructDef, TypeAnn};
pub use cfg::{lower, lower_program, Cfg};
pub use cost::{loop_key, loop_keys, predict, Prediction};
pub use dataflow::{solve, Analysis, Direction, Solution};
pub use diag::{Diagnostic, Severity, Span};
pub use gen::{gen_program, gen_source, render, strip_spans};
pub use heuristic::{select, LoopChoice, Selection};
pub use ir::{IrBlock, IrField, IrFunc, IrProgram, IrSite, IrStruct, IrTy};
pub use loops::{find_control_loops, ControlLoop, LoopId, LoopKind};
pub use lower::{compile, lower_ir};
pub use opt::{optimize, optimize_src, OptReport, SiteReport, TouchKind, TouchReport, Verdict};
pub use parser::{parse, ParseError};
pub use racecheck::racecheck;
pub use scheme::{select_scheme, select_scheme_src, Scheme, SchemeSignals, SchemeVerdict};
pub use typeck::{typecheck, typecheck_src};
pub use update::{update_matrix, UpdateMatrix};
pub use verdicts::{mech_table, MechTable, SiteVerdict};
pub use verify::{shrink, source_fails, verify_seed, verify_source, Coverage, Failure};

/// Default path-affinity for unannotated pointer fields (§4.3: 70 %).
pub const DEFAULT_AFFINITY: f64 = 0.70;

/// Migration threshold on the selected induction variable's update
/// affinity (§4.3: 90 %; the break-even at the 7× cost ratio is ≈ 86 %).
pub const MIGRATION_THRESHOLD: f64 = 0.90;

/// The mechanism the heuristic assigns to a dereference site.
///
/// Mirrors the runtime's `Mechanism`; kept separate so the compiler crate
/// has no dependency on the machine layers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mech {
    /// Move the thread to the data.
    Migrate,
    /// Move the data's cache line to the thread.
    Cache,
}

impl Mech {
    pub fn name(self) -> &'static str {
        match self {
            Mech::Migrate => "migrate",
            Mech::Cache => "cache",
        }
    }
}
