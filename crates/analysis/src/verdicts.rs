//! olden-select: the §4 heuristic as a whole-program decision surface.
//!
//! [`crate::heuristic::select`] decides mechanisms per *control loop and
//! variable*; this module lowers that selection onto the program text,
//! producing one [`SiteVerdict`] per pointer-check site — the same site
//! granularity the CFG lowering and the runtime use (a path
//! `base->f1->…->fk` is `k` sites). Each verdict records the chosen
//! [`Mech`] and *why*: the pass-1 affinity against the 90 % threshold,
//! parallel-loop forcing, inheritance, or a pass-2 bottleneck demotion.
//!
//! The table is the conformance surface for the benchmark descriptors:
//! `Descriptor::selected_mechanisms` pins these keys byte-for-byte, and a
//! test checks the kernels' hard-coded `Mechanism` arguments agree (see
//! `tests/select_parity.rs`).

use crate::ast::{Expr, Program, Stmt};
use crate::diag::Span;
use crate::heuristic::{select, LoopChoice, Selection};
use crate::loops::LoopKind;
use crate::{Mech, MIGRATION_THRESHOLD};

/// The verdict for one pointer-check site.
#[derive(Clone, Debug)]
pub struct SiteVerdict {
    /// Function the site belongs to.
    pub func: String,
    /// Source location of the dereference expression.
    pub span: Span,
    /// `base->f1->…->field` rendering (one verdict per arrow of a path).
    pub site: String,
    /// The pointer variable the path starts from.
    pub base: String,
    /// Index into [`Selection::loops`] of the innermost enclosing control
    /// loop, if any.
    pub loop_idx: Option<usize>,
    /// Fields navigated before the accessed one (empty for `base->f`).
    pub prefix: Vec<String>,
    /// True when the site is the final step of a store.
    pub is_store: bool,
    /// The mechanism the heuristic chose for dereferences of `base` here.
    pub mech: Mech,
    /// Why pass 1 / pass 2 chose it.
    pub reason: String,
}

impl SiteVerdict {
    /// Stable annotation key: `"{func} {span} {site} -> {mech}"` — the
    /// format `Descriptor::selected_mechanisms` pins.
    pub fn key(&self) -> String {
        format!(
            "{} {} {} -> {}",
            self.func,
            self.span,
            self.site,
            self.mech.name()
        )
    }
}

/// The whole-program verdict table.
#[derive(Clone, Debug)]
pub struct MechTable {
    pub sites: Vec<SiteVerdict>,
    pub selection: Selection,
}

impl MechTable {
    /// All site keys, in source (evaluation) order.
    pub fn keys(&self) -> Vec<String> {
        self.sites.iter().map(|s| s.key()).collect()
    }

    /// Human-readable listing: the per-loop selection summary followed by
    /// one line per site (the `oldenc select` surface).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for l in &self.selection.loops {
            let kind = match &l.kind {
                LoopKind::While { cond } => format!("while ({cond})"),
                LoopKind::Recursion => "recursion".to_string(),
            };
            let sel = match (&l.selected, l.affinity) {
                (Some(v), Some(a)) => format!("{v} @ {}", pct(a)),
                (Some(v), None) => format!("{v} (inherited)"),
                _ => "-".to_string(),
            };
            let mech = l
                .selected
                .as_deref()
                .map(|v| l.mech(v).name())
                .unwrap_or("-");
            let _ = writeln!(
                out,
                "loop {}: {} [{}{}] selected={} -> {}",
                l.func,
                kind,
                if l.parallel { "parallel" } else { "serial" },
                if l.bottleneck { ", bottleneck" } else { "" },
                sel,
                mech,
            );
        }
        for s in &self.sites {
            let _ = writeln!(out, "{} ({})", s.key(), s.reason);
        }
        out
    }
}

/// Render an affinity as a percentage with one decimal (deterministic,
/// and does not round 99.75 % up to a misleading "100%").
fn pct(a: f64) -> String {
    format!("{:.1}%", a * 100.0)
}

/// Compute the per-site verdict table for a program.
pub fn mech_table(prog: &Program) -> MechTable {
    let selection = select(prog);
    let mut sites = Vec::new();
    for f in &prog.funcs {
        // This function's loops, as indices into `selection.loops`, in
        // discovery order: the recursion loop first (if any), then the
        // `while` loops in the same pre-order traversal the walker below
        // performs — so consuming them sequentially at each `while`
        // reproduces the loop ids exactly.
        let func_loops: Vec<usize> = selection
            .loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.func == f.name)
            .map(|(i, _)| i)
            .collect();
        let mut w = Walker {
            selection: &selection,
            func: &f.name,
            func_loops: &func_loops,
            next_loop: 0,
            stack: Vec::new(),
            out: &mut sites,
        };
        if let Some(&first) = func_loops.first() {
            if matches!(selection.loops[first].kind, LoopKind::Recursion) {
                w.next_loop = 1;
                w.stack.push(first);
            }
        }
        w.stmts(&f.body);
    }
    MechTable { sites, selection }
}

/// AST walker mirroring the CFG lowering's evaluation order, with a live
/// stack of enclosing control loops.
struct Walker<'a> {
    selection: &'a Selection,
    func: &'a str,
    func_loops: &'a [usize],
    next_loop: usize,
    stack: Vec<usize>,
    out: &'a mut Vec<SiteVerdict>,
}

impl Walker<'_> {
    fn stmts(&mut self, ss: &[Stmt]) {
        for s in ss {
            match s {
                Stmt::Assign { src, .. } => self.expr(src),
                Stmt::Store {
                    base,
                    fields,
                    src,
                    span,
                } => {
                    // Evaluation order matches the CFG: the stored value
                    // first, then the destination path's check sites.
                    self.expr(src);
                    self.path(base, fields, *span, true);
                }
                Stmt::If { cond, then_, else_ } => {
                    self.expr(cond);
                    self.stmts(then_);
                    self.stmts(else_);
                }
                Stmt::While { cond, body } => {
                    let li = self.func_loops[self.next_loop];
                    self.next_loop += 1;
                    self.stack.push(li);
                    // The condition re-evaluates every iteration: its
                    // sites belong to the loop.
                    self.expr(cond);
                    self.stmts(body);
                    self.stack.pop();
                }
                Stmt::ExprStmt(e) => self.expr(e),
                Stmt::Return(Some(e)) => self.expr(e),
                Stmt::Touch { .. } | Stmt::Return(None) => {}
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Path { base, fields, span } => self.path(base, fields, *span, false),
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Unary { arg, .. } => self.expr(arg),
            Expr::Int(_) | Expr::Null | Expr::Var(_) => {}
        }
    }

    /// Emit one verdict per arrow of `base->f1->…->fk`.
    fn path(&mut self, base: &str, fields: &[String], span: Span, is_store: bool) {
        let (mech, reason) = self.resolve(base);
        let mut site = base.to_string();
        for (j, f) in fields.iter().enumerate() {
            site.push_str("->");
            site.push_str(f);
            self.out.push(SiteVerdict {
                func: self.func.to_string(),
                span,
                site: site.clone(),
                base: base.to_string(),
                loop_idx: self.stack.last().copied(),
                prefix: fields[..j].to_vec(),
                is_store: is_store && j == fields.len() - 1,
                mech,
                reason: reason.clone(),
            });
        }
    }

    /// Mechanism and rationale for dereferences of `base` at the current
    /// loop nesting.
    fn resolve(&self, base: &str) -> (Mech, String) {
        let Some(&li) = self.stack.last() else {
            // §4.3 only speaks about control loops; straight-line code
            // runs once, so the cheap mechanism (no thread movement) wins.
            return (Mech::Cache, "outside any control loop".to_string());
        };
        let c: &LoopChoice = &self.selection.loops[li];
        let mech = c.mech(base);
        let reason = if c.selected.as_deref() == Some(base) {
            if c.bottleneck {
                "demoted by pass 2: migration here would serialize on a shared root".to_string()
            } else if c.inherited {
                "no induction variable: migration inherited from the parent loop".to_string()
            } else {
                // A selected, non-inherited variable always has an
                // affinity from pass 1.
                let a = c.affinity.unwrap_or(crate::DEFAULT_AFFINITY);
                match mech {
                    Mech::Migrate if a >= MIGRATION_THRESHOLD => {
                        format!(
                            "affinity {} >= threshold {}",
                            pct(a),
                            pct(MIGRATION_THRESHOLD)
                        )
                    }
                    Mech::Migrate => {
                        format!("parallel loop forces migration (affinity {})", pct(a))
                    }
                    Mech::Cache => {
                        format!(
                            "affinity {} < threshold {}",
                            pct(a),
                            pct(MIGRATION_THRESHOLD)
                        )
                    }
                }
            }
        } else {
            "not the selected traversal variable".to_string()
        };
        (mech, reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn table(src: &str) -> MechTable {
        mech_table(&parse(src).unwrap())
    }

    #[test]
    fn sites_match_cfg_lowering() {
        // The walker must agree with the CFG about what a site is: same
        // count, same renderings, same order, same store flags.
        let src = r#"
            struct node { node *next @ 95; node *peer; int val; };
            void f(node *a) {
                while (a) {
                    node *b = a->peer->next;
                    b->val = a->val;
                    a = a->next;
                }
            }
        "#;
        let prog = parse(src).unwrap();
        let t = mech_table(&prog);
        let cfgs = crate::cfg::lower_program(&prog);
        let cfg_sites: Vec<(String, bool)> = cfgs
            .iter()
            .flat_map(|c| c.sites.iter().map(|s| (s.render(), s.is_store)))
            .collect();
        let tbl_sites: Vec<(String, bool)> = t
            .sites
            .iter()
            .map(|s| (s.site.clone(), s.is_store))
            .collect();
        assert_eq!(tbl_sites, cfg_sites);
    }

    #[test]
    fn treeadd_shape_migrates_everywhere() {
        let t = table(
            r#"
            struct tree { tree *left; tree *right; int val; };
            int T(tree *t) {
                if (t == null) { return 0; }
                else { return T(t->left) + T(t->right) + t->val; }
            }
        "#,
        );
        assert_eq!(t.sites.len(), 3);
        for s in &t.sites {
            assert_eq!(s.mech, Mech::Migrate, "{}", s.site);
            assert!(s.reason.contains("91.0%"), "{}", s.reason);
        }
    }

    #[test]
    fn non_traversal_variable_caches_with_reason() {
        let t = table(
            r#"
            struct node { node *next @ 95; node *peer; int x; };
            void f(node *a) {
                while (a) {
                    node *b = a->peer;
                    int y = b->x;
                    a = a->next;
                }
            }
        "#,
        );
        let b_site = t.sites.iter().find(|s| s.base == "b").unwrap();
        assert_eq!(b_site.mech, Mech::Cache);
        assert_eq!(b_site.reason, "not the selected traversal variable");
        let a_next = t.sites.iter().find(|s| s.site == "a->next").unwrap();
        assert_eq!(a_next.mech, Mech::Migrate);
    }

    #[test]
    fn bottleneck_demotion_reaches_the_sites() {
        // Figure 5's WalkAndTraverse: Traverse's sites cache, with the
        // pass-2 reason attached.
        let t = table(
            r#"
            struct list { list *next; };
            struct tree { tree *left; tree *right; };
            void Traverse(tree *t) {
                if (t == null) { return; }
                else { Traverse(t->left); Traverse(t->right); }
            }
            void WalkAndTraverse(list *l, tree *t) {
                while (l) {
                    futurecall Traverse(t);
                    l = l->next;
                }
            }
        "#,
        );
        for s in t.sites.iter().filter(|s| s.func == "Traverse") {
            assert_eq!(s.mech, Mech::Cache);
            assert!(s.reason.contains("pass 2"), "{}", s.reason);
        }
    }

    #[test]
    fn sites_outside_loops_cache() {
        let t = table(
            r#"
            struct node { node *next @ 95; node *child @ 95; };
            int f(node *x) {
                node *l = x->child;
                while (l != null) { l = l->next; }
                return 0;
            }
        "#,
        );
        let child = t.sites.iter().find(|s| s.site == "x->child").unwrap();
        assert_eq!(child.mech, Mech::Cache);
        assert_eq!(child.reason, "outside any control loop");
        assert_eq!(child.loop_idx, None);
        let next = t.sites.iter().find(|s| s.site == "l->next").unwrap();
        assert_eq!(next.mech, Mech::Migrate);
        assert!(next.loop_idx.is_some());
    }

    #[test]
    fn keys_are_stable_and_unique() {
        let t = table(
            r#"
            struct node { node *a; node *b; };
            void f(node *n) { while (n) { n = n->a->b; } }
        "#,
        );
        let keys = t.keys();
        assert_eq!(keys.len(), 2, "two arrows, two sites");
        assert!(keys[0].ends_with("n->a -> cache"), "{}", keys[0]);
        assert!(keys[1].ends_with("n->a->b -> cache"), "{}", keys[1]);
        let mut dedup = keys.clone();
        dedup.dedup();
        assert_eq!(dedup, keys);
    }

    #[test]
    fn render_mentions_loops_and_sites() {
        let t = table(
            r#"
            struct tree { tree *left; tree *right; };
            void T(tree *t) {
                if (t == null) { return; }
                else { T(t->left); T(t->right); }
            }
        "#,
        );
        let r = t.render();
        assert!(r.contains("loop T: recursion"));
        assert!(r.contains("t->left -> migrate"));
    }
}
