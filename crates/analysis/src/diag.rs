//! Diagnostics: source spans, lint codes, severities.
//!
//! The racecheck pass ([`crate::racecheck`]) reports its findings through
//! this framework so that tools (the `oldenc` binary, CI golden files,
//! tests) see one stable, line-oriented format:
//!
//! ```text
//! warning[RC001]: continuation may race with in-flight future `Work` …
//!   --> 7:5
//!   note: future spawned at 5:13
//! ```
//!
//! Spans are `(line, column)` pairs, both 1-based, attached to tokens by
//! the lexer and threaded through the AST nodes the analyses report on.
//! `0:0` ([`Span::DUMMY`]) marks synthesized nodes (e.g. the implicit
//! `= null` of an uninitialized declaration, or hand-built test ASTs).

use std::fmt;

/// A source position: 1-based line and column. `0:0` means "synthesized,
/// no source location".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    /// The span of synthesized nodes (no source location).
    pub const DUMMY: Span = Span { line: 0, col: 0 };

    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// True for real source positions (anything the lexer produced).
    pub fn is_real(self) -> bool {
        self != Span::DUMMY
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth knowing, not necessarily wrong.
    Note,
    /// Likely bug: the release-consistency contract may be violated.
    Warning,
    /// Definite contract violation.
    Error,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable lint codes for the racecheck pass.
pub mod codes {
    /// A continuation access conflicts with an in-flight (un-touched)
    /// future's body: if the continuation is stolen, the two run
    /// concurrently with no ordering `touch`.
    pub const FUTURE_VS_CONTINUATION: &str = "RC001";
    /// Two in-flight sibling futures (or a loop-carried future and the
    /// next iteration) have conflicting accesses with no join between.
    pub const SIBLING_FUTURES: &str = "RC002";
    /// A future is still in flight when its function returns — its body
    /// is ordered only by the caller's implicit join.
    pub const UNTOUCHED_FUTURE: &str = "RC003";

    // ----- typechecker codes ([`crate::typeck`]) ------------------------

    /// A declared type (field, parameter, return) names no known type:
    /// pointers must target a declared struct, scalars must be `int`.
    pub const UNKNOWN_TYPE: &str = "TC001";
    /// A path step names a field the struct does not have.
    pub const UNKNOWN_FIELD: &str = "TC002";
    /// `->` applied to something that is not a pointer.
    pub const NON_POINTER_DEREF: &str = "TC003";
    /// A call passes the wrong number of arguments.
    pub const CALL_ARITY: &str = "TC004";
    /// A call argument's type does not match the parameter declaration.
    pub const ARG_TYPE: &str = "TC005";
    /// `touch x` where `x` does not hold a future.
    pub const TOUCH_NON_FUTURE: &str = "TC006";
    /// A future handle is touched twice on some path.
    pub const DOUBLE_TOUCH: &str = "TC007";
    /// An un-touched future handle is used (or overwritten) — the value
    /// does not exist until the `touch` joins the body.
    pub const FUTURE_UNTOUCHED_USE: &str = "TC008";
    /// A variable has irreconcilable types on merging control paths
    /// (branch join or loop back edge), or a store's value type does not
    /// match the field — the loop induction-variable discipline.
    pub const TYPE_CONFLICT: &str = "TC009";
    /// An operand has an invalid type for the operator (void value used,
    /// pointer arithmetic).
    pub const INVALID_OPERAND: &str = "TC010";
    /// A `return` does not match the declared return type.
    pub const RETURN_MISMATCH: &str = "TC011";
    /// A variable is used but never a parameter or assigned anywhere in
    /// the function.
    pub const UNDEFINED_VAR: &str = "TC012";
    /// Two structs, functions, fields, or parameters share a name.
    pub const DUPLICATE_DEF: &str = "TC013";
}

/// One finding, with enough structure for golden-file comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code (see [`codes`]).
    pub code: &'static str,
    pub severity: Severity,
    /// Primary location (the later of the two conflicting accesses, or
    /// the construct at fault).
    pub span: Span,
    /// Human-readable, deterministic message.
    pub message: String,
    /// Secondary locations / context, e.g. where the future was spawned.
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn new(
        code: &'static str,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// The single-line form used by `oldenc` and the CI golden file:
    /// `severity[CODE] line:col: message`.
    pub fn one_line(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity.name(),
            self.code,
            self.span,
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}\n  --> {}",
            self.severity.name(),
            self.code,
            self.message,
            self.span
        )?;
        for n in &self.notes {
            write!(f, "\n  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display_and_dummy() {
        assert_eq!(Span::new(7, 12).to_string(), "7:12");
        assert!(!Span::DUMMY.is_real());
        assert!(Span::new(1, 1).is_real());
    }

    #[test]
    fn diagnostic_formats() {
        let d = Diagnostic::new(
            codes::FUTURE_VS_CONTINUATION,
            Severity::Warning,
            Span::new(7, 5),
            "continuation may race with in-flight future `Work`",
        )
        .with_note("future spawned at 5:13");
        assert_eq!(
            d.one_line(),
            "warning[RC001] 7:5: continuation may race with in-flight future `Work`"
        );
        let long = d.to_string();
        assert!(long.contains("--> 7:5"));
        assert!(long.contains("note: future spawned at 5:13"));
    }

    #[test]
    fn severity_order() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    /// The multi-line `Display` form keeps one `note:` line per note, in
    /// insertion order, after the `-->` span line — the shape `oldenc
    /// check` prints for multi-location findings.
    #[test]
    fn multi_note_rendering_keeps_order() {
        let d = Diagnostic::new(
            codes::SIBLING_FUTURES,
            Severity::Warning,
            Span::new(12, 9),
            "sibling futures conflict on `t->val`",
        )
        .with_note("first future spawned at 10:13")
        .with_note("second future spawned at 11:13");
        let text = d.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].starts_with("warning[RC002]"));
        assert_eq!(lines[1].trim(), "--> 12:9");
        assert_eq!(lines[2].trim(), "note: first future spawned at 10:13");
        assert_eq!(lines[3].trim(), "note: second future spawned at 11:13");
    }

    /// Spans on constructs that span multiple source lines point at the
    /// construct's first token, and dummy spans render as `0:0` without
    /// claiming to be real.
    #[test]
    fn dummy_span_renders_but_is_not_real() {
        let d = Diagnostic::new(
            codes::TYPE_CONFLICT,
            Severity::Error,
            Span::DUMMY,
            "synthesized node",
        );
        assert_eq!(d.one_line(), "error[TC009] 0:0: synthesized node");
        assert!(!d.span.is_real());
    }

    /// TC codes are distinct from each other and from the RC codes.
    #[test]
    fn codes_are_unique() {
        let all = [
            codes::FUTURE_VS_CONTINUATION,
            codes::SIBLING_FUTURES,
            codes::UNTOUCHED_FUTURE,
            codes::UNKNOWN_TYPE,
            codes::UNKNOWN_FIELD,
            codes::NON_POINTER_DEREF,
            codes::CALL_ARITY,
            codes::ARG_TYPE,
            codes::TOUCH_NON_FUTURE,
            codes::DOUBLE_TOUCH,
            codes::FUTURE_UNTOUCHED_USE,
            codes::TYPE_CONFLICT,
            codes::INVALID_OPERAND,
            codes::RETURN_MISMATCH,
            codes::UNDEFINED_VAR,
            codes::DUPLICATE_DEF,
        ];
        let set: std::collections::HashSet<&str> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len());
    }
}
