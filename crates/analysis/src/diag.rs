//! Diagnostics: source spans, lint codes, severities.
//!
//! The racecheck pass ([`crate::racecheck`]) reports its findings through
//! this framework so that tools (the `oldenc` binary, CI golden files,
//! tests) see one stable, line-oriented format:
//!
//! ```text
//! warning[RC001]: continuation may race with in-flight future `Work` …
//!   --> 7:5
//!   note: future spawned at 5:13
//! ```
//!
//! Spans are `(line, column)` pairs, both 1-based, attached to tokens by
//! the lexer and threaded through the AST nodes the analyses report on.
//! `0:0` ([`Span::DUMMY`]) marks synthesized nodes (e.g. the implicit
//! `= null` of an uninitialized declaration, or hand-built test ASTs).

use std::fmt;

/// A source position: 1-based line and column. `0:0` means "synthesized,
/// no source location".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    /// The span of synthesized nodes (no source location).
    pub const DUMMY: Span = Span { line: 0, col: 0 };

    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// True for real source positions (anything the lexer produced).
    pub fn is_real(self) -> bool {
        self != Span::DUMMY
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth knowing, not necessarily wrong.
    Note,
    /// Likely bug: the release-consistency contract may be violated.
    Warning,
    /// Definite contract violation.
    Error,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable lint codes for the racecheck pass.
pub mod codes {
    /// A continuation access conflicts with an in-flight (un-touched)
    /// future's body: if the continuation is stolen, the two run
    /// concurrently with no ordering `touch`.
    pub const FUTURE_VS_CONTINUATION: &str = "RC001";
    /// Two in-flight sibling futures (or a loop-carried future and the
    /// next iteration) have conflicting accesses with no join between.
    pub const SIBLING_FUTURES: &str = "RC002";
    /// A future is still in flight when its function returns — its body
    /// is ordered only by the caller's implicit join.
    pub const UNTOUCHED_FUTURE: &str = "RC003";
}

/// One finding, with enough structure for golden-file comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code (see [`codes`]).
    pub code: &'static str,
    pub severity: Severity,
    /// Primary location (the later of the two conflicting accesses, or
    /// the construct at fault).
    pub span: Span,
    /// Human-readable, deterministic message.
    pub message: String,
    /// Secondary locations / context, e.g. where the future was spawned.
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn new(
        code: &'static str,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// The single-line form used by `oldenc` and the CI golden file:
    /// `severity[CODE] line:col: message`.
    pub fn one_line(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity.name(),
            self.code,
            self.span,
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}\n  --> {}",
            self.severity.name(),
            self.code,
            self.message,
            self.span
        )?;
        for n in &self.notes {
            write!(f, "\n  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display_and_dummy() {
        assert_eq!(Span::new(7, 12).to_string(), "7:12");
        assert!(!Span::DUMMY.is_real());
        assert!(Span::new(1, 1).is_real());
    }

    #[test]
    fn diagnostic_formats() {
        let d = Diagnostic::new(
            codes::FUTURE_VS_CONTINUATION,
            Severity::Warning,
            Span::new(7, 5),
            "continuation may race with in-flight future `Work`",
        )
        .with_note("future spawned at 5:13");
        assert_eq!(
            d.one_line(),
            "warning[RC001] 7:5: continuation may race with in-flight future `Work`"
        );
        let long = d.to_string();
        assert!(long.contains("--> 7:5"));
        assert!(long.contains("note: future spawned at 5:13"));
    }

    #[test]
    fn severity_order() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
