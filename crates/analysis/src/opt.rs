//! The check-elision and touch-placement optimizer.
//!
//! The paper's compiler "inserts the lookup before each cached deref"
//! (§3) and a residence test before each migrated one. Naively that
//! re-tests the same pointer along straight-line code and around loop
//! bodies. This pass removes the redundant tests with a **must-
//! availability** dataflow over the [`crate::cfg`] lowering:
//!
//! * `Local(p)` — a *migration*-mechanism check of `p` was performed (or
//!   elided) on every path to here and the thread has provably not moved
//!   since, so the object `p` points at is still on this processor.
//! * `Cached(p)` — a *caching*-mechanism check of `p` succeeded on every
//!   path, and nothing has invalidated this processor's copy since.
//!
//! Kill sets follow the release-consistency reduction (§3.2): a
//! migration **send is a release and its receipt an acquire**, and under
//! local knowledge an acquire invalidates the whole software cache. So a
//! performed migration-mechanism check (which may move the thread) kills
//! *everything*; a call or touch whose callee/future body may migrate,
//! write, or touch kills every fact except `Local`s of bare variables —
//! those survive because the logical thread always returns to the
//! processor it entered on, and home locations never move. Pointer
//! reassignment kills the variable's facts, and a store to field `f`
//! kills facts whose access *path* runs through `f` (the write-through
//! keeps already-cached lines coherent; only path navigation can go
//! stale). Calls to functions that provably perform no migration-
//! mechanism checks, stores, futures, or touches (directly or
//! transitively) kill nothing.
//!
//! The second pass checks **touch placement**: a touch whose future value
//! is never consumed on any path and whose body is transitively
//! write-free is dead (removing it cannot lose an acquire); a touch
//! separated from its first dependent statement by independent work was
//! hoisted too early, and the latest safe point is reported.
//!
//! Everything here assumes data-race freedom — the racecheck pass
//! (RC001–RC003) is the tool that validates that assumption.

use crate::ast::{Expr, FuncDef, Program, Stmt};
use crate::cfg::{lower, Block, Cfg, Event, Site};
use crate::dataflow::{solve, Analysis, Direction};
use crate::diag::Span;
use crate::heuristic::{select, Selection};
use crate::parser::{parse, ParseError};
use crate::Mech;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The optimizer's decision for one check site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The check must stay.
    CheckNeeded,
    /// The check is redundant: the fact it would establish already holds
    /// on every path to this site.
    CheckElided,
}

/// One check site's verdict, with provenance.
#[derive(Clone, Debug)]
pub struct SiteReport {
    pub func: String,
    /// `base->f1->…->field` rendering of the site.
    pub site: String,
    pub span: Span,
    pub mech: Mech,
    pub is_store: bool,
    pub verdict: Verdict,
    /// Why: the covering check for an elision, the invalidator (or
    /// "first check") for a kept one.
    pub reason: String,
}

impl SiteReport {
    /// Stable identity used by benchmark descriptors and the CI gate.
    pub fn key(&self) -> String {
        format!("{} {} {}", self.func, self.span, self.site)
    }
}

/// A touch-placement finding.
#[derive(Clone, Debug)]
pub struct TouchReport {
    pub func: String,
    pub var: String,
    pub span: Span,
    pub kind: TouchKind,
    pub detail: String,
}

/// What is wrong with the touch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TouchKind {
    /// Value never consumed on any path, body transitively write-free:
    /// removing the touch cannot lose a value or an acquire.
    Dead,
    /// Independent statements sit between the touch and its first
    /// dependence; `latest` is the latest safe point.
    TooEarly { latest: Span },
}

/// The whole program's optimization report.
#[derive(Clone, Debug, Default)]
pub struct OptReport {
    pub sites: Vec<SiteReport>,
    pub touches: Vec<TouchReport>,
}

impl OptReport {
    /// (total sites, elided sites).
    pub fn stats(&self) -> (usize, usize) {
        let total = self.sites.len();
        let elided = self
            .sites
            .iter()
            .filter(|s| s.verdict == Verdict::CheckElided)
            .count();
        (total, elided)
    }

    /// Stable keys of every elided site (descriptor / CI-gate currency).
    pub fn elided_keys(&self) -> Vec<String> {
        self.sites
            .iter()
            .filter(|s| s.verdict == Verdict::CheckElided)
            .map(SiteReport::key)
            .collect()
    }

    /// Deterministic multi-line rendering (the `oldenc opt` surface).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let (total, elided) = self.stats();
        let pct = if total == 0 {
            0
        } else {
            ((elided as f64 / total as f64) * 100.0).round() as u32
        };
        let _ = writeln!(out, "checks: {total} sites, {elided} elided ({pct}%)");
        for s in &self.sites {
            let mech = match s.mech {
                Mech::Migrate => "migrate",
                Mech::Cache => "cache",
            };
            let store = if s.is_store { " store" } else { "" };
            let verdict = match s.verdict {
                Verdict::CheckNeeded => "check",
                Verdict::CheckElided => "elide",
            };
            let _ = writeln!(
                out,
                "  {} {} {} [{mech}{store}] {verdict}: {}",
                s.func, s.span, s.site, s.reason
            );
        }
        if self.touches.is_empty() {
            let _ = writeln!(out, "touches: clean");
        } else {
            let _ = writeln!(out, "touches: {} finding(s)", self.touches.len());
            for t in &self.touches {
                let kind = match &t.kind {
                    TouchKind::Dead => "dead".to_string(),
                    TouchKind::TooEarly { latest } => format!("too-early (move to {latest})"),
                };
                let _ = writeln!(
                    out,
                    "  {} {} touch {} {kind}: {}",
                    t.func, t.span, t.var, t.detail
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Facts.
// ---------------------------------------------------------------------

/// One availability fact about the object reached by `base->path`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AvailFact {
    /// A migration-mechanism check saw the object on this processor, and
    /// the thread has not moved since.
    Local { base: String, path: Vec<String> },
    /// A caching-mechanism check left the object's line valid in this
    /// processor's cache.
    Cached { base: String, path: Vec<String> },
}

impl AvailFact {
    fn base(&self) -> &str {
        match self {
            AvailFact::Local { base, .. } | AvailFact::Cached { base, .. } => base,
        }
    }
    fn path(&self) -> &[String] {
        match self {
            AvailFact::Local { path, .. } | AvailFact::Cached { path, .. } => path,
        }
    }
    fn is_bare_local(&self) -> bool {
        matches!(self, AvailFact::Local { path, .. } if path.is_empty())
    }
    fn object(&self) -> String {
        object_name(self.base(), self.path())
    }
}

fn object_name(base: &str, path: &[String]) -> String {
    let mut s = base.to_string();
    for f in path {
        s.push_str("->");
        s.push_str(f);
    }
    s
}

/// The fact set at a program point: `None` is ⊤ (unvisited), the meet is
/// set intersection — a fact holds only if it holds on *every* path.
type Facts = Option<BTreeSet<AvailFact>>;

// ---------------------------------------------------------------------
// Function summaries.
// ---------------------------------------------------------------------

/// Callee names appearing anywhere in a function body.
fn callees(f: &FuncDef) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    crate::ast::walk_stmts(&f.body, &mut |s| {
        s.exprs(&mut |e| {
            if let Expr::Call { func, .. } = e {
                out.insert(func.clone());
            }
        });
    });
    out
}

/// Per-function: can calling it disturb the caller's availability facts?
/// True if the function (transitively) performs a migration-mechanism
/// check, a store, a future spawn, or a touch — or calls outside the
/// program. A non-disturbing callee provably never moves the thread and
/// never triggers an acquire, so facts flow straight across the call.
fn disturbs_map(prog: &Program, sel: &Selection) -> HashMap<String, bool> {
    let mut own: HashMap<String, bool> = HashMap::new();
    for f in &prog.funcs {
        let mut d = false;
        crate::ast::walk_stmts(&f.body, &mut |s| {
            match s {
                Stmt::Store { .. } | Stmt::Touch { .. } => d = true,
                _ => {}
            }
            s.exprs(&mut |e| match e {
                Expr::Call { future: true, .. } => d = true,
                Expr::Path { base, .. } if sel.mech(&f.name, base) == Mech::Migrate => d = true,
                _ => {}
            });
            if let Stmt::Store { base, .. } = s {
                if sel.mech(&f.name, base) == Mech::Migrate {
                    d = true;
                }
            }
        });
        own.insert(f.name.clone(), d);
    }
    propagate_through_calls(prog, own)
}

/// Per-function: may it (transitively) write the heap? Used by the
/// dead-touch pass — a write-free future body has nothing for the
/// touch's acquire to order.
fn writes_map(prog: &Program) -> HashMap<String, bool> {
    let mut own: HashMap<String, bool> = HashMap::new();
    for f in &prog.funcs {
        let mut w = false;
        crate::ast::walk_stmts(&f.body, &mut |s| {
            if matches!(s, Stmt::Store { .. }) {
                w = true;
            }
        });
        own.insert(f.name.clone(), w);
    }
    propagate_through_calls(prog, own)
}

/// Close a per-function boolean property over the call graph: a function
/// acquires the property if any callee has it; calls to functions not in
/// the program count as having it (conservative).
fn propagate_through_calls(
    prog: &Program,
    mut flags: HashMap<String, bool>,
) -> HashMap<String, bool> {
    let call_lists: Vec<(String, BTreeSet<String>)> = prog
        .funcs
        .iter()
        .map(|f| (f.name.clone(), callees(f)))
        .collect();
    loop {
        let mut changed = false;
        for (name, cs) in &call_lists {
            if flags[name] {
                continue;
            }
            let hit = cs.iter().any(|c| *flags.get(c.as_str()).unwrap_or(&true));
            if hit {
                flags.insert(name.clone(), true);
                changed = true;
            }
        }
        if !changed {
            return flags;
        }
    }
}

// ---------------------------------------------------------------------
// Must-availability.
// ---------------------------------------------------------------------

struct PassCtx<'a> {
    cfg: &'a Cfg,
    mechs: &'a [Mech],
    disturbs: &'a HashMap<String, bool>,
}

/// Walk state: facts plus per-block provenance (why each fact is here,
/// why each absent fact died) for human-readable verdict reasons.
#[derive(Default)]
struct State {
    facts: BTreeSet<AvailFact>,
    origin: BTreeMap<AvailFact, String>,
    killed: BTreeMap<AvailFact, String>,
}

impl State {
    fn kill(&mut self, pred: impl Fn(&AvailFact) -> bool, reason: impl Fn(&AvailFact) -> String) {
        let dead: Vec<AvailFact> = self.facts.iter().filter(|f| pred(f)).cloned().collect();
        for f in dead {
            self.facts.remove(&f);
            self.origin.remove(&f);
            let r = reason(&f);
            self.killed.insert(f, r);
        }
    }

    fn gen(&mut self, fact: AvailFact, span: Span) {
        self.origin
            .insert(fact.clone(), format!("checked at {span}"));
        self.facts.insert(fact);
    }
}

/// Apply one event; returns the verdict when the event is a check site.
fn step(st: &mut State, ev: &Event, ctx: &PassCtx) -> Option<(usize, Verdict, String)> {
    match ev {
        Event::Use { .. } | Event::Return => None,
        Event::Check(sid) => Some(step_check(st, *sid, ctx)),
        Event::Assign { var, span, .. } => {
            st.kill(
                |f| f.base() == var,
                |f| {
                    format!(
                        "{} invalidated by reassignment of {var} at {span}",
                        f.object()
                    )
                },
            );
            None
        }
        Event::Store { field, span } => {
            st.kill(
                |f| f.path().contains(field),
                |f| format!("{} invalidated by store to {field} at {span}", f.object()),
            );
            None
        }
        Event::Call { func, span, .. } => {
            if *ctx.disturbs.get(func.as_str()).unwrap_or(&true) {
                st.kill(
                    |f| !f.is_bare_local(),
                    |f| format!("{} invalidated by call to {func} at {span}", f.object()),
                );
            }
            None
        }
        Event::Touch { var, span } => {
            st.kill(
                |f| !f.is_bare_local(),
                |f| format!("{} invalidated by touch of {var} at {span}", f.object()),
            );
            None
        }
    }
}

fn step_check(st: &mut State, sid: usize, ctx: &PassCtx) -> (usize, Verdict, String) {
    let site: &Site = &ctx.cfg.sites[sid];
    let obj = object_name(&site.base, &site.path);
    let local = AvailFact::Local {
        base: site.base.clone(),
        path: site.path.clone(),
    };
    match ctx.mechs[sid] {
        Mech::Migrate => {
            if st.facts.contains(&local) {
                let why = st.origin.get(&local).cloned().unwrap_or_default();
                (sid, Verdict::CheckElided, format!("{obj} {why}"))
            } else {
                let why = st
                    .killed
                    .get(&local)
                    .cloned()
                    .unwrap_or_else(|| format!("first check of {obj} on this path"));
                // A performed migration check may move the thread: every
                // Local of another object and every Cached line is gone.
                let span = site.span;
                st.kill(
                    |_| true,
                    |f| format!("{} invalidated by possible migration at {span}", f.object()),
                );
                st.gen(local, span);
                (sid, Verdict::CheckNeeded, why)
            }
        }
        Mech::Cache => {
            let cached = AvailFact::Cached {
                base: site.base.clone(),
                path: site.path.clone(),
            };
            if st.facts.contains(&local) {
                let why = st.origin.get(&local).cloned().unwrap_or_default();
                (sid, Verdict::CheckElided, format!("{obj} {why}"))
            } else if st.facts.contains(&cached) {
                let why = st.origin.get(&cached).cloned().unwrap_or_default();
                (sid, Verdict::CheckElided, format!("{obj} {why}"))
            } else {
                let why = st
                    .killed
                    .get(&cached)
                    .or_else(|| st.killed.get(&local))
                    .cloned()
                    .unwrap_or_else(|| format!("first check of {obj} on this path"));
                // A cache fetch never moves the thread: gen, no kill.
                st.gen(cached, site.span);
                (sid, Verdict::CheckNeeded, why)
            }
        }
    }
}

struct MustAvail<'a> {
    ctx: PassCtx<'a>,
}

impl Analysis for MustAvail<'_> {
    type Fact = Facts;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self) -> Facts {
        Some(BTreeSet::new())
    }
    fn top(&self) -> Facts {
        None
    }
    fn meet(&self, a: &Facts, b: &Facts) -> Facts {
        match (a, b) {
            (None, x) | (x, None) => x.clone(),
            (Some(a), Some(b)) => Some(a.intersection(b).cloned().collect()),
        }
    }
    fn transfer(&self, _cfg: &Cfg, block: &Block, input: &Facts) -> Facts {
        let facts = input.as_ref()?;
        let mut st = State {
            facts: facts.clone(),
            ..State::default()
        };
        for ev in &block.events {
            step(&mut st, ev, &self.ctx);
        }
        Some(st.facts)
    }
}

// ---------------------------------------------------------------------
// Touch liveness.
// ---------------------------------------------------------------------

struct LiveVars;

impl Analysis for LiveVars {
    type Fact = BTreeSet<String>;
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn boundary(&self) -> BTreeSet<String> {
        BTreeSet::new()
    }
    fn top(&self) -> BTreeSet<String> {
        BTreeSet::new()
    }
    fn meet(&self, a: &BTreeSet<String>, b: &BTreeSet<String>) -> BTreeSet<String> {
        a.union(b).cloned().collect()
    }
    fn transfer(&self, _cfg: &Cfg, block: &Block, input: &BTreeSet<String>) -> BTreeSet<String> {
        let mut live = input.clone();
        for ev in block.events.iter().rev() {
            live_step(&mut live, ev);
        }
        live
    }
}

/// One event's backward liveness effect. A touch is *not* a use of the
/// value — it only synchronizes; consumption is what keeps it alive.
fn live_step(live: &mut BTreeSet<String>, ev: &Event) {
    match ev {
        Event::Use { var } => {
            live.insert(var.clone());
        }
        Event::Assign { var, .. } => {
            live.remove(var);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------

/// Run both passes over a parsed program.
pub fn optimize(prog: &Program) -> OptReport {
    let sel = select(prog);
    let disturbs = disturbs_map(prog, &sel);
    let writes = writes_map(prog);
    let mut report = OptReport::default();
    for func in &prog.funcs {
        let cfg = lower(func);
        let mechs: Vec<Mech> = cfg
            .sites
            .iter()
            .map(|s| sel.mech(&func.name, &s.base))
            .collect();
        let ctx = PassCtx {
            cfg: &cfg,
            mechs: &mechs,
            disturbs: &disturbs,
        };
        site_verdicts(&cfg, &ctx, func, &mut report);
        touch_findings(&cfg, func, &writes, &mut report);
    }
    report
}

/// Parse and optimize a DSL source.
pub fn optimize_src(src: &str) -> Result<OptReport, ParseError> {
    Ok(optimize(&parse(src)?))
}

/// Deterministic post-fixpoint walk assigning one verdict per site.
fn site_verdicts(cfg: &Cfg, ctx: &PassCtx, func: &FuncDef, report: &mut OptReport) {
    let sol = solve(
        &MustAvail {
            ctx: PassCtx { ..*ctx },
        },
        cfg,
    );
    let mut verdicts: Vec<Option<(Verdict, String)>> = vec![None; cfg.sites.len()];
    for b in &cfg.blocks {
        let init = sol.input[b.id].clone().unwrap_or_default();
        let mut st = State::default();
        for f in init {
            st.origin
                .insert(f.clone(), "checked on every path to this block".into());
            st.facts.insert(f);
        }
        for ev in &b.events {
            if let Some((sid, v, why)) = step(&mut st, ev, ctx) {
                verdicts[sid] = Some((v, why));
            }
        }
    }
    for (sid, site) in cfg.sites.iter().enumerate() {
        let (verdict, reason) = verdicts[sid]
            .clone()
            .unwrap_or((Verdict::CheckNeeded, "unreachable".into()));
        report.sites.push(SiteReport {
            func: func.name.clone(),
            site: site.render(),
            span: site.span,
            mech: ctx.mechs[sid],
            is_store: site.is_store,
            verdict,
            reason,
        });
    }
}

/// The future body bound to `var`, when every assignment to `var` in the
/// function is the same `futurecall`.
fn future_body_of(cfg: &Cfg, var: &str) -> Option<String> {
    let mut body: Option<String> = None;
    for b in &cfg.blocks {
        for ev in &b.events {
            if let Event::Assign {
                var: v, future_of, ..
            } = ev
            {
                if v != var {
                    continue;
                }
                match (future_of, &body) {
                    (Some(f), None) => body = Some(f.clone()),
                    (Some(f), Some(prev)) if f == prev => {}
                    _ => return None,
                }
            }
        }
    }
    body
}

/// Dead touches (backward liveness + write-free body) and too-early
/// touches (independent statements before the first dependence).
fn touch_findings(
    cfg: &Cfg,
    func: &FuncDef,
    writes: &HashMap<String, bool>,
    report: &mut OptReport,
) {
    let live = solve(&LiveVars, cfg);
    for b in &cfg.blocks {
        // Dead: walk the block backward tracking liveness per event.
        let mut cur = live.input[b.id].clone();
        for ev in b.events.iter().rev() {
            if let Event::Touch { var, span } = ev {
                if !cur.contains(var) {
                    if let Some(body) = future_body_of(cfg, var) {
                        if !*writes.get(body.as_str()).unwrap_or(&true) {
                            report.touches.push(TouchReport {
                                func: func.name.clone(),
                                var: var.clone(),
                                span: *span,
                                kind: TouchKind::Dead,
                                detail: format!(
                                    "value of {var} is never used and {body} performs no \
                                     writes; the touch is removable"
                                ),
                            });
                        }
                    }
                }
            }
            live_step(&mut cur, ev);
        }
        // Too early: for each touch, count the independent statements
        // between it and its first in-block dependence.
        for (i, ev) in b.events.iter().enumerate() {
            let Event::Touch { var, span } = ev else {
                continue;
            };
            let mut gap = 0usize;
            for later in &b.events[i + 1..] {
                match later {
                    Event::Use { var: u } if u != var => {}
                    Event::Assign { var: a, .. } if a != var => gap += 1,
                    _ => {
                        if gap > 0 {
                            let latest = barrier_span(b, later);
                            report.touches.push(TouchReport {
                                func: func.name.clone(),
                                var: var.clone(),
                                span: *span,
                                kind: TouchKind::TooEarly { latest },
                                detail: format!(
                                    "{gap} independent statement(s) run between this \
                                     touch and the first use of {var}; touching later \
                                     would overlap them with the future"
                                ),
                            });
                        }
                        break;
                    }
                }
            }
        }
    }
    // Deterministic order: by span.
    report
        .touches
        .sort_by_key(|t| (t.func.clone(), t.span.line, t.span.col));
}

/// Best span for a barrier event: its own when it has one, else the next
/// event in the block that does.
fn barrier_span(block: &Block, barrier: &Event) -> Span {
    let own = |ev: &Event| -> Option<Span> {
        match ev {
            Event::Check(_) => None, // resolved by the caller's site table? keep simple:
            Event::Assign { span, .. }
            | Event::Store { span, .. }
            | Event::Call { span, .. }
            | Event::Touch { span, .. } => Some(*span),
            _ => None,
        }
    };
    if let Some(s) = own(barrier) {
        return s;
    }
    // Scan past the barrier for the first located event.
    let pos = block.events.iter().position(|e| std::ptr::eq(e, barrier));
    if let Some(p) = pos {
        for ev in &block.events[p..] {
            if let Some(s) = own(ev) {
                return s;
            }
        }
    }
    Span::DUMMY
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(src: &str) -> OptReport {
        optimize_src(src).unwrap()
    }

    fn verdict_of<'a>(r: &'a OptReport, site: &str) -> &'a SiteReport {
        r.sites
            .iter()
            .find(|s| s.site == site)
            .unwrap_or_else(|| panic!("no site {site} in {:#?}", r.sites))
    }

    const TREEADD: &str = r#"
        struct tree { tree *left; tree *right; int val; };
        int TreeAdd(tree *t) {
            if (t == null) { return 0; }
            else {
                int lv = futurecall TreeAdd(t->left);
                int rv = TreeAdd(t->right);
                touch lv;
                return lv + rv + t->val;
            }
        }
    "#;

    #[test]
    fn treeadd_elides_after_first_migrate_check() {
        let r = rep(TREEADD);
        let (total, elided) = r.stats();
        assert_eq!(total, 3);
        assert_eq!(elided, 2, "{}", r.render());
        assert_eq!(verdict_of(&r, "t->left").verdict, Verdict::CheckNeeded);
        assert_eq!(verdict_of(&r, "t->right").verdict, Verdict::CheckElided);
        assert_eq!(verdict_of(&r, "t->val").verdict, Verdict::CheckElided);
        // The bare Local(t) fact survives both the future spawn and the
        // touch: the thread comes back to its entry processor.
        assert!(verdict_of(&r, "t->val").reason.contains("checked at"));
    }

    #[test]
    fn reassignment_kills_availability_around_the_backedge() {
        let r = rep(r#"
            struct list { list *next @ 97; int v; };
            int Walk(list *l) {
                int acc = 0;
                while (l != null) {
                    acc = acc + l->v;
                    acc = acc + l->v;
                    l = l->next;
                }
                return acc;
            }
        "#);
        // 97% affinity -> migrate on l. First l->v re-checks every
        // iteration (the backedge's reassignment killed the fact); the
        // second and l->next ride the first.
        let needed: Vec<_> = r
            .sites
            .iter()
            .map(|s| (s.site.as_str(), s.verdict))
            .collect();
        assert_eq!(
            needed,
            vec![
                ("l->v", Verdict::CheckNeeded),
                ("l->v", Verdict::CheckElided),
                ("l->next", Verdict::CheckElided),
            ]
        );
        // The kill is on the backedge (previous iteration's `l = l->next`),
        // which is out of this block: the reason falls back to first-check.
        assert!(r.sites[0].reason.contains("first check of l"));
    }

    #[test]
    fn performed_migrate_check_kills_other_pointers_facts() {
        let r = rep(r#"
            struct node { node *next @ 95; int v; };
            int f(node *a, node *b) {
                int x = a->v;
                int y = b->v;
                int z = a->v;
                return x + y + z;
            }
        "#);
        // No loop: every variable's deref caches. But with migrate
        // forced via affinity there is no loop either — mech() consults
        // loops only, so both cache here; the second a->v still elides
        // and b->v performs.
        assert_eq!(verdict_of(&r, "b->v").verdict, Verdict::CheckNeeded);
        let a_sites: Vec<_> = r.sites.iter().filter(|s| s.site == "a->v").collect();
        assert_eq!(a_sites[0].verdict, Verdict::CheckNeeded);
        assert_eq!(a_sites[1].verdict, Verdict::CheckElided);
    }

    #[test]
    fn migration_invalidates_cached_lines() {
        let r = rep(r#"
            struct cell { cell *c @ 50; int v; };
            struct item { item *next @ 95; int w; };
            int f(item *p, cell *q) {
                int acc = 0;
                while (p != null) {
                    acc = acc + q->v;
                    acc = acc + p->w;
                    acc = acc + q->v;
                    p = p->next;
                }
                return acc;
            }
        "#);
        // p migrates (95 %), q caches. The performed migrate check on
        // p->w between the two q->v reads may move the thread: the
        // second q->v must re-check.
        let q_sites: Vec<_> = r.sites.iter().filter(|s| s.site == "q->v").collect();
        assert_eq!(q_sites[0].verdict, Verdict::CheckNeeded);
        assert_eq!(q_sites[1].verdict, Verdict::CheckNeeded, "{}", r.render());
        assert!(q_sites[1].reason.contains("possible migration"));
    }

    #[test]
    fn nondisturbing_callee_preserves_cached_facts() {
        let r = rep(r#"
            struct cell { cell *c0 @ 50; cell *c1 @ 50; };
            void Walk(cell *t) {
                if (t == null) { return; }
                else {
                    Walk(t->c0);
                    Walk(t->c1);
                }
            }
        "#);
        // Walk performs only cache-mechanism checks (50 % affinities):
        // it can never move the thread or trigger an acquire, so the
        // Cached(t) fact flows across the recursive call.
        assert_eq!(verdict_of(&r, "t->c0").verdict, Verdict::CheckNeeded);
        assert_eq!(verdict_of(&r, "t->c1").verdict, Verdict::CheckElided);
    }

    #[test]
    fn disturbing_callee_kills_cached_facts() {
        let r = rep(r#"
            struct cell { cell *c0 @ 50; cell *c1 @ 50; int v; };
            void f(cell *t) {
                if (t == null) { return; }
                else {
                    int a = t->v;
                    consume(a);
                    int b = t->c0->v;
                    return;
                }
            }
        "#);
        // `consume` is not in the program: assume the worst (it may
        // migrate/write), which invalidates this processor's cache.
        let t_sites: Vec<_> = r.sites.iter().filter(|s| s.site == "t->v").collect();
        assert_eq!(t_sites[0].verdict, Verdict::CheckNeeded);
        assert_eq!(verdict_of(&r, "t->c0").verdict, Verdict::CheckNeeded);
        assert!(verdict_of(&r, "t->c0").reason.contains("call to consume"));
    }

    #[test]
    fn store_kills_facts_whose_path_navigates_the_field() {
        let r = rep(r#"
            struct node { node *link @ 50; int v; };
            void f(node *p, node *q) {
                int a = p->link->v;
                q->link = null;
                int b = p->link->v;
                return;
            }
        "#);
        // Writing any `link` may redirect the path p->link: the second
        // p->link->v's *second* step must re-check (its object may have
        // changed), while the first step (object *p, path []) survives —
        // the store doesn't move p itself.
        let deep: Vec<_> = r.sites.iter().filter(|s| s.site == "p->link->v").collect();
        assert_eq!(deep[0].verdict, Verdict::CheckNeeded);
        assert_eq!(deep[1].verdict, Verdict::CheckNeeded, "{}", r.render());
        assert!(deep[1].reason.contains("store to link"));
        let shallow: Vec<_> = r.sites.iter().filter(|s| s.site == "p->link").collect();
        assert_eq!(shallow[1].verdict, Verdict::CheckElided);
    }

    #[test]
    fn touch_kills_cached_but_not_bare_local() {
        let r = rep(r#"
            struct tree { tree *left; tree *right; int val; };
            struct side { side *s @ 50; int w; };
            int f(tree *t, side *x) {
                int a = x->w;
                int h = futurecall f(t->left, x);
                touch h;
                int b = x->w;
                int c = t->val;
                return a + b + c + h;
            }
        "#);
        // Cached(x) dies at the call/touch; Local(t) survives both.
        let x_sites: Vec<_> = r.sites.iter().filter(|s| s.site == "x->w").collect();
        assert_eq!(x_sites[1].verdict, Verdict::CheckNeeded);
        assert_eq!(verdict_of(&r, "t->val").verdict, Verdict::CheckElided);
    }

    #[test]
    fn dead_touch_detected_for_writefree_unused_future() {
        let r = rep(r#"
            struct tree { tree *left; tree *right; int v; };
            int Sum(tree *t) {
                if (t == null) { return 0; }
                else { return Sum(t->left) + Sum(t->right); }
            }
            int Driver(tree *t) {
                int h = futurecall Sum(t);
                touch h;
                return 0;
            }
        "#);
        assert_eq!(r.touches.len(), 1, "{}", r.render());
        let t = &r.touches[0];
        assert_eq!(t.kind, TouchKind::Dead);
        assert_eq!(t.var, "h");
        assert!(t.detail.contains("Sum performs no writes"));
    }

    #[test]
    fn dead_touch_not_reported_when_body_writes() {
        let r = rep(r#"
            struct tree { tree *left; int v; };
            int Mark(tree *t) {
                if (t == null) { return 0; }
                else { t->v = 1; return Mark(t->left); }
            }
            int Driver(tree *t) {
                int h = futurecall Mark(t);
                touch h;
                return 0;
            }
        "#);
        assert!(
            r.touches.iter().all(|t| t.kind != TouchKind::Dead),
            "{}",
            r.render()
        );
    }

    #[test]
    fn too_early_touch_reports_latest_safe_point() {
        let r = rep(r#"
            struct tree { tree *left; tree *right; int v; };
            int Sum(tree *t) {
                if (t == null) { return 0; }
                else { return Sum(t->left) + Sum(t->right); }
            }
            int Driver(tree *t, int n) {
                int h = futurecall Sum(t);
                touch h;
                int a = n + 1;
                int b = a + 2;
                int c = h + b;
                return c;
            }
        "#);
        let early: Vec<_> = r
            .touches
            .iter()
            .filter(|t| matches!(t.kind, TouchKind::TooEarly { .. }))
            .collect();
        assert_eq!(early.len(), 1, "{}", r.render());
        assert!(early[0].detail.contains("2 independent statement(s)"));
        if let TouchKind::TooEarly { latest } = early[0].kind {
            assert!(latest.is_real());
        }
    }

    #[test]
    fn well_placed_touch_is_clean() {
        let r = rep(TREEADD);
        assert!(r.touches.is_empty(), "{}", r.render());
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let a = rep(TREEADD).render();
        let b = rep(TREEADD).render();
        assert_eq!(a, b);
        assert!(a.contains("checks: 3 sites, 2 elided (67%)"));
        assert!(a.contains("touches: clean"));
    }

    #[test]
    fn elided_keys_are_stable_site_identities() {
        let r = rep(TREEADD);
        let keys = r.elided_keys();
        assert_eq!(keys.len(), 2);
        for k in &keys {
            assert!(k.starts_with("TreeAdd "), "{k}");
        }
        assert!(keys[0].contains("t->right"));
        assert!(keys[1].contains("t->val"));
    }
}
