//! A seeded generator of well-typed DSL programs (ROADMAP item 5).
//!
//! [`gen_program`] maps a `u64` seed deterministically (via
//! [`olden_rng::SplitMix64`]) to a [`Program`] that:
//!
//! * parses back from its canonical rendering ([`render`]) to the same
//!   AST (up to spans — generated nodes carry [`Span::DUMMY`]);
//! * typechecks cleanly ([`crate::typeck::typecheck`] returns nothing);
//! * exercises the grammar the passes consume — recursive structs with
//!   affinity annotations, tree-recursive and list-walk functions,
//!   nested control loops, `futurecall`/`touch` patterns, stores
//!   (releases), extern calls, and multi-field / multi-base paths.
//!
//! The generator works signature-first: struct layouts and function
//! signatures are fixed before any body is produced, so calls (including
//! recursive and cross-function ones) can always be emitted with correct
//! arity and argument types. Bodies are then grown from a small set of
//! shape templates (guard-return, tree recursion, list walk, counting
//! loop) plus typed filler statements, tracking a variable→type
//! environment so every emitted expression is well-typed by
//! construction.
//!
//! The fuzz harness ([`crate::verify`]) treats this family as an
//! unbounded workload set: every oracle that holds on the ten
//! hand-written benchmarks is re-checked on as many generated programs
//! as the seed range asks for.

use crate::ast::{Expr, FieldDef, FuncDef, Program, Stmt, StructDef, TypeAnn};
use crate::diag::Span;
use olden_rng::SplitMix64;

/// Generate the well-typed program for `seed`. Deterministic: equal
/// seeds give equal programs, on every platform.
pub fn gen_program(seed: u64) -> Program {
    Gen::new(seed).run()
}

/// [`gen_program`] rendered to canonical DSL source.
pub fn gen_source(seed: u64) -> String {
    render(&gen_program(seed))
}

/// A generated value type: the generator only ever manipulates ints and
/// struct pointers (futures appear only in the fixed spawn/touch/use
/// template, so they never live in the environment).
#[derive(Clone, Copy, PartialEq)]
enum GTy {
    Int,
    Ptr(usize),
}

/// A generated return type.
#[derive(Clone, Copy, PartialEq)]
enum Ret {
    Int,
    Void,
    Ptr(usize),
}

struct Sig {
    name: String,
    params: Vec<GTy>,
    ret: Ret,
}

struct Gen {
    rng: SplitMix64,
    structs: Vec<StructDef>,
    sigs: Vec<Sig>,
    /// Fresh-name counter, per function (locals are `l…`/`h…`/`q…`/`i…`
    /// plus the counter, so distinct prefixes can share it).
    ctr: usize,
    /// Extern callee counter, program-global so names stay unique.
    ext: usize,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: SplitMix64::new(seed),
            structs: Vec::new(),
            sigs: Vec::new(),
            ctr: 0,
            ext: 0,
        }
    }

    fn run(&mut self) -> Program {
        self.gen_structs();
        self.gen_sigs();
        let funcs = (0..self.sigs.len()).map(|i| self.gen_func(i)).collect();
        Program {
            structs: self.structs.clone(),
            funcs,
        }
    }

    // ----- declarations --------------------------------------------------

    fn gen_structs(&mut self) {
        let n = 1 + self.rng.below(3) as usize;
        let mut fctr = 0usize;
        let mut vctr = 0usize;
        for i in 0..n {
            let mut fields = Vec::new();
            let nptr = 1 + self.rng.below(2) as usize;
            for j in 0..nptr {
                // The first field of struct 0 always points back at
                // struct 0, so a recursive spine is guaranteed.
                let target = if i == 0 && j == 0 {
                    0
                } else {
                    self.rng.below(n as u64) as usize
                };
                let affinity = if self.rng.chance(0.6) {
                    // Integer percentages only, so the `@ NN` rendering
                    // round-trips exactly.
                    Some((40 + self.rng.below(61)) as f64 / 100.0)
                } else {
                    None
                };
                fields.push(FieldDef {
                    name: format!("f{fctr}"),
                    ty: format!("s{target}"),
                    is_pointer: true,
                    affinity,
                });
                fctr += 1;
            }
            let nint = 1 + self.rng.below(2) as usize;
            for _ in 0..nint {
                fields.push(FieldDef {
                    name: format!("v{vctr}"),
                    ty: "int".into(),
                    is_pointer: false,
                    affinity: None,
                });
                vctr += 1;
            }
            self.structs.push(StructDef {
                name: format!("s{i}"),
                fields,
            });
        }
    }

    fn gen_sigs(&mut self) {
        let nfuncs = 2 + self.rng.below(3) as usize;
        let nstructs = self.structs.len() as u64;
        // Function 0 is the anchor: int-returning over the recursive
        // struct, so the tree-recursion template always has a home.
        self.sigs.push(Sig {
            name: "g0".into(),
            params: vec![GTy::Ptr(0)],
            ret: Ret::Int,
        });
        for i in 1..nfuncs {
            let ret = match self.rng.below(3) {
                0 => Ret::Int,
                1 => Ret::Void,
                _ => Ret::Ptr(self.rng.below(nstructs) as usize),
            };
            let nparams = 1 + self.rng.below(2) as usize;
            let params = (0..nparams)
                .map(|_| {
                    if self.rng.chance(0.7) {
                        GTy::Ptr(self.rng.below(nstructs) as usize)
                    } else {
                        GTy::Int
                    }
                })
                .collect();
            self.sigs.push(Sig {
                name: format!("g{i}"),
                params,
                ret,
            });
        }
    }

    // ----- struct queries ------------------------------------------------

    /// A pointer field of struct `s` that points back at `s`, if any.
    fn self_field(&self, s: usize) -> Option<&FieldDef> {
        let me = &self.structs[s].name;
        self.structs[s]
            .fields
            .iter()
            .find(|f| f.is_pointer && f.ty == *me)
    }

    /// Some int field of struct `s` (every generated struct has one).
    fn int_field(&self, s: usize) -> &FieldDef {
        self.structs[s]
            .fields
            .iter()
            .find(|f| !f.is_pointer)
            .expect("every generated struct has an int field")
    }

    /// A pointer field of struct `s` and the index of its target.
    fn ptr_field(&self, s: usize, k: usize) -> (&FieldDef, usize) {
        let ptrs: Vec<&FieldDef> = self.structs[s]
            .fields
            .iter()
            .filter(|f| f.is_pointer)
            .collect();
        let fd = ptrs[k % ptrs.len()];
        let target = self
            .structs
            .iter()
            .position(|sd| sd.name == fd.ty)
            .expect("pointer fields target generated structs");
        (fd, target)
    }

    // ----- typed expressions ---------------------------------------------

    fn fresh(&mut self, prefix: &str) -> String {
        let n = self.ctr;
        self.ctr += 1;
        format!("{prefix}{n}")
    }

    fn int_var(&mut self, env: &[(String, GTy)]) -> Option<String> {
        let ints: Vec<&String> = env
            .iter()
            .filter(|(_, t)| *t == GTy::Int)
            .map(|(n, _)| n)
            .collect();
        if ints.is_empty() {
            None
        } else {
            Some(ints[self.rng.below(ints.len() as u64) as usize].clone())
        }
    }

    fn ptr_var(&mut self, env: &[(String, GTy)]) -> Option<(String, usize)> {
        let ptrs: Vec<(&String, usize)> = env
            .iter()
            .filter_map(|(n, t)| match t {
                GTy::Ptr(s) => Some((n, *s)),
                GTy::Int => None,
            })
            .collect();
        if ptrs.is_empty() {
            None
        } else {
            let (n, s) = ptrs[self.rng.below(ptrs.len() as u64) as usize];
            Some((n.clone(), s))
        }
    }

    fn ptr_var_of(&mut self, env: &[(String, GTy)], s: usize) -> Option<String> {
        let ptrs: Vec<&String> = env
            .iter()
            .filter(|(_, t)| *t == GTy::Ptr(s))
            .map(|(n, _)| n)
            .collect();
        if ptrs.is_empty() {
            None
        } else {
            Some(ptrs[self.rng.below(ptrs.len() as u64) as usize].clone())
        }
    }

    /// An `int`-typed expression over `env`.
    fn int_expr(&mut self, env: &[(String, GTy)], depth: usize) -> Expr {
        let choice = self.rng.below(5);
        match choice {
            0 | 1 => Expr::Int(self.rng.below(10) as i64),
            2 => match self.int_var(env) {
                Some(v) => Expr::Var(v),
                None => Expr::Int(self.rng.below(10) as i64),
            },
            3 => match self.ptr_var(env) {
                // A (possibly multi-field) int-valued path: ptr fields
                // then a final int field.
                Some((base, s)) => {
                    let mut fields = Vec::new();
                    let mut cur = s;
                    if self.rng.chance(0.4) {
                        let k = self.rng.below(4) as usize;
                        let (fd, target) = self.ptr_field(cur, k);
                        fields.push(fd.name.clone());
                        cur = target;
                    }
                    fields.push(self.int_field(cur).name.clone());
                    Expr::Path {
                        base,
                        fields,
                        span: Span::DUMMY,
                    }
                }
                None => Expr::Int(self.rng.below(10) as i64),
            },
            _ if depth > 0 => {
                let ops = ["+", "-", "*", "%"];
                let op = ops[self.rng.below(ops.len() as u64) as usize];
                Expr::Binary {
                    op: op.into(),
                    lhs: Box::new(self.int_expr(env, depth - 1)),
                    rhs: Box::new(self.int_expr(env, depth - 1)),
                }
            }
            _ => Expr::Int(self.rng.below(10) as i64),
        }
    }

    /// A pointer-typed expression of struct `s` over `env`.
    fn ptr_expr(&mut self, env: &[(String, GTy)], s: usize) -> Expr {
        if self.rng.chance(0.7) {
            if let Some(v) = self.ptr_var_of(env, s) {
                // Maybe step through a field that lands back on `s`.
                if self.rng.chance(0.4) {
                    if let Some(fd) = self.self_field(s) {
                        return Expr::Path {
                            base: v,
                            fields: vec![fd.name.clone()],
                            span: Span::DUMMY,
                        };
                    }
                }
                return Expr::Var(v);
            }
        }
        Expr::Null
    }

    /// Arguments matching `self.sigs[j]`'s declared parameter types.
    fn args_for(&mut self, j: usize, env: &[(String, GTy)]) -> Vec<Expr> {
        let ptys = self.sigs[j].params.clone();
        ptys.iter()
            .map(|t| match t {
                GTy::Int => self.int_expr(env, 0),
                GTy::Ptr(s) => self.ptr_expr(env, *s),
            })
            .collect()
    }

    // ----- statements ----------------------------------------------------

    fn assign(dst: String, src: Expr) -> Stmt {
        Stmt::Assign {
            dst,
            src,
            span: Span::DUMMY,
        }
    }

    /// A batch of well-typed filler statements, extending `env` with any
    /// locals it introduces.
    fn filler(&mut self, env: &mut Vec<(String, GTy)>, out: &mut Vec<Stmt>) {
        match self.rng.below(7) {
            // Int local.
            0 => {
                let v = self.fresh("l");
                let e = self.int_expr(env, 1);
                out.push(Gen::assign(v.clone(), e));
                env.push((v, GTy::Int));
            }
            // Pointer local.
            1 => {
                let s = self.rng.below(self.structs.len() as u64) as usize;
                let v = self.fresh("q");
                let e = self.ptr_expr(env, s);
                out.push(Gen::assign(v.clone(), e));
                env.push((v, GTy::Ptr(s)));
            }
            // Store (a release): through an int or pointer field.
            2 => {
                if let Some((base, s)) = self.ptr_var(env) {
                    if self.rng.chance(0.6) {
                        let f = self.int_field(s).name.clone();
                        let e = self.int_expr(env, 1);
                        out.push(Stmt::Store {
                            base,
                            fields: vec![f],
                            src: e,
                            span: Span::DUMMY,
                        });
                    } else {
                        let k = self.rng.below(4) as usize;
                        let (fd, target) = self.ptr_field(s, k);
                        let fname = fd.name.clone();
                        let e = self.ptr_expr(env, target);
                        out.push(Stmt::Store {
                            base,
                            fields: vec![fname],
                            src: e,
                            span: Span::DUMMY,
                        });
                    }
                }
            }
            // Extern call: unconstrained callee, result treated as int.
            3 => {
                let v = self.fresh("l");
                let name = format!("ext{}", self.ext);
                self.ext += 1;
                let mut args = vec![self.int_expr(env, 0)];
                if let Some((p, _)) = self.ptr_var(env) {
                    args.insert(0, Expr::Var(p));
                }
                out.push(Gen::assign(
                    v.clone(),
                    Expr::Call {
                        func: name,
                        args,
                        future: false,
                        span: Span::DUMMY,
                    },
                ));
                env.push((v, GTy::Int));
            }
            // Known call, arity- and type-correct: fused future for int
            // callees, bare (maybe future) call for void callees.
            4 => {
                let j = self.rng.below(self.sigs.len() as u64) as usize;
                match self.sigs[j].ret {
                    Ret::Int => {
                        let args = self.args_for(j, env);
                        let callee = self.sigs[j].name.clone();
                        let h = self.fresh("h");
                        if self.rng.chance(0.6) {
                            // Spawn, overlap with independent work, then
                            // touch and use — the §2 future idiom.
                            out.push(Gen::assign(
                                h.clone(),
                                Expr::Call {
                                    func: callee,
                                    args,
                                    future: true,
                                    span: Span::DUMMY,
                                },
                            ));
                            let l = self.fresh("l");
                            let e = self.int_expr(env, 1);
                            out.push(Gen::assign(l.clone(), e));
                            env.push((l.clone(), GTy::Int));
                            out.push(Stmt::Touch {
                                var: h.clone(),
                                span: Span::DUMMY,
                            });
                            let u = self.fresh("l");
                            out.push(Gen::assign(
                                u.clone(),
                                Expr::Binary {
                                    op: "+".into(),
                                    lhs: Box::new(Expr::Var(h.clone())),
                                    rhs: Box::new(Expr::Var(l)),
                                },
                            ));
                            env.push((h, GTy::Int));
                            env.push((u, GTy::Int));
                        } else {
                            out.push(Gen::assign(
                                h.clone(),
                                Expr::Call {
                                    func: callee,
                                    args,
                                    future: false,
                                    span: Span::DUMMY,
                                },
                            ));
                            env.push((h, GTy::Int));
                        }
                    }
                    Ret::Void => {
                        let args = self.args_for(j, env);
                        let callee = self.sigs[j].name.clone();
                        // Fire-and-forget futures are part of the
                        // benchmark idiom (health, barneshut).
                        let future = self.rng.chance(0.5);
                        out.push(Stmt::ExprStmt(Expr::Call {
                            func: callee,
                            args,
                            future,
                            span: Span::DUMMY,
                        }));
                    }
                    Ret::Ptr(s) => {
                        let args = self.args_for(j, env);
                        let callee = self.sigs[j].name.clone();
                        let q = self.fresh("q");
                        out.push(Gen::assign(
                            q.clone(),
                            Expr::Call {
                                func: callee,
                                args,
                                future: false,
                                span: Span::DUMMY,
                            },
                        ));
                        env.push((q, GTy::Ptr(s)));
                    }
                }
            }
            // Multi-base field product: reads off two different bases in
            // one expression.
            5 => {
                if let Some((a, sa)) = self.ptr_var(env) {
                    if let Some((b, sb)) = self.ptr_var(env) {
                        let v = self.fresh("l");
                        let fa = self.int_field(sa).name.clone();
                        let fb = self.int_field(sb).name.clone();
                        out.push(Gen::assign(
                            v.clone(),
                            Expr::Binary {
                                op: "+".into(),
                                lhs: Box::new(Expr::Path {
                                    base: a,
                                    fields: vec![fa],
                                    span: Span::DUMMY,
                                }),
                                rhs: Box::new(Expr::Path {
                                    base: b,
                                    fields: vec![fb],
                                    span: Span::DUMMY,
                                }),
                            },
                        ));
                        env.push((v, GTy::Int));
                    }
                }
            }
            // Conditional over an int or pointer test.
            _ => {
                let cond = if self.rng.chance(0.5) {
                    match self.ptr_var(env) {
                        Some((p, _)) => Expr::Binary {
                            op: "!=".into(),
                            lhs: Box::new(Expr::Var(p)),
                            rhs: Box::new(Expr::Null),
                        },
                        None => self.int_expr(env, 0),
                    }
                } else {
                    Expr::Binary {
                        op: "<".into(),
                        lhs: Box::new(self.int_expr(env, 0)),
                        rhs: Box::new(self.int_expr(env, 0)),
                    }
                };
                // Branch bodies only mutate locals they introduce, so
                // the join environments always agree.
                let mut then_ = Vec::new();
                let mut tenv = env.clone();
                let v = self.fresh("l");
                let e1 = self.int_expr(&tenv, 1);
                then_.push(Gen::assign(v.clone(), e1));
                tenv.push((v.clone(), GTy::Int));
                let else_ = if self.rng.chance(0.5) {
                    vec![Gen::assign(v, self.int_expr(env, 1))]
                } else {
                    Vec::new()
                };
                out.push(Stmt::If { cond, then_, else_ });
            }
        }
    }

    /// The tree-recursion template over function `i` (Figure 4's shape):
    /// guard, spawn a recursive future on one spine field, recurse
    /// plainly on another, touch, combine.
    fn tree_recursion(&mut self, i: usize, env: &mut Vec<(String, GTy)>, out: &mut Vec<Stmt>) {
        let p = env[0].0.clone();
        let GTy::Ptr(s) = env[0].1 else {
            unreachable!()
        };
        let Some(spine) = self.self_field(s).map(|f| f.name.clone()) else {
            return;
        };
        out.push(Stmt::If {
            cond: Expr::Binary {
                op: "==".into(),
                lhs: Box::new(Expr::Var(p.clone())),
                rhs: Box::new(Expr::Null),
            },
            then_: vec![Stmt::Return(Some(Expr::Int(0)))],
            else_: Vec::new(),
        });
        let step = |_g: &mut Gen, field: &str| Expr::Path {
            base: p.clone(),
            fields: vec![field.to_string()],
            span: Span::DUMMY,
        };
        // Second spine field if the struct has one (distinct recursion
        // arms, like left/right), else reuse the first.
        let arm2 = self.structs[s]
            .fields
            .iter()
            .filter(|f| f.is_pointer && f.ty == self.structs[s].name)
            .nth(1)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| spine.clone());
        let mut spawn_args = vec![step(self, &spine)];
        let mut plain_args = vec![step(self, &arm2)];
        for t in self.sigs[i].params.clone().iter().skip(1) {
            spawn_args.push(match t {
                GTy::Int => self.int_expr(env, 0),
                GTy::Ptr(k) => self.ptr_expr(env, *k),
            });
            plain_args.push(match t {
                GTy::Int => self.int_expr(env, 0),
                GTy::Ptr(k) => self.ptr_expr(env, *k),
            });
        }
        let callee = self.sigs[i].name.clone();
        let h = self.fresh("h");
        let l = self.fresh("l");
        out.push(Gen::assign(
            h.clone(),
            Expr::Call {
                func: callee.clone(),
                args: spawn_args,
                future: true,
                span: Span::DUMMY,
            },
        ));
        out.push(Gen::assign(
            l.clone(),
            Expr::Call {
                func: callee,
                args: plain_args,
                future: false,
                span: Span::DUMMY,
            },
        ));
        out.push(Stmt::Touch {
            var: h.clone(),
            span: Span::DUMMY,
        });
        let vfield = self.int_field(s).name.clone();
        let u = self.fresh("l");
        out.push(Gen::assign(
            u.clone(),
            Expr::Binary {
                op: "+".into(),
                lhs: Box::new(Expr::Binary {
                    op: "+".into(),
                    lhs: Box::new(Expr::Var(h.clone())),
                    rhs: Box::new(Expr::Var(l.clone())),
                }),
                rhs: Box::new(Expr::Path {
                    base: p,
                    fields: vec![vfield],
                    span: Span::DUMMY,
                }),
            },
        ));
        env.push((h, GTy::Int));
        env.push((l, GTy::Int));
        env.push((u, GTy::Int));
    }

    /// The list-walk template: accumulate over a spine, stepping the
    /// pointer parameter — the classic induction-variable shape the §4
    /// update matrices are built for.
    fn list_walk(&mut self, env: &mut Vec<(String, GTy)>, out: &mut Vec<Stmt>) {
        let Some((p, s)) = self.ptr_var(env) else {
            return;
        };
        let Some(spine) = self.self_field(s).map(|f| f.name.clone()) else {
            return;
        };
        let acc = self.fresh("l");
        out.push(Gen::assign(acc.clone(), Expr::Int(0)));
        env.push((acc.clone(), GTy::Int));
        let vfield = self.int_field(s).name.clone();
        let mut body = vec![Gen::assign(
            acc.clone(),
            Expr::Binary {
                op: "+".into(),
                lhs: Box::new(Expr::Var(acc.clone())),
                rhs: Box::new(Expr::Path {
                    base: p.clone(),
                    fields: vec![vfield.clone()],
                    span: Span::DUMMY,
                }),
            },
        )];
        if self.rng.chance(0.5) {
            // A release inside the loop.
            body.push(Stmt::Store {
                base: p.clone(),
                fields: vec![vfield],
                src: Expr::Var(acc.clone()),
                span: Span::DUMMY,
            });
        }
        body.push(Gen::assign(
            p.clone(),
            Expr::Path {
                base: p.clone(),
                fields: vec![spine],
                span: Span::DUMMY,
            },
        ));
        out.push(Stmt::While {
            cond: Expr::Binary {
                op: "!=".into(),
                lhs: Box::new(Expr::Var(p)),
                rhs: Box::new(Expr::Null),
            },
            body,
        });
    }

    /// A bounded counting loop, optionally with a nested conditional or
    /// inner loop — the nested-control-structure coverage.
    fn count_loop(&mut self, env: &mut Vec<(String, GTy)>, out: &mut Vec<Stmt>) {
        let i = self.fresh("i");
        let acc = self.fresh("l");
        out.push(Gen::assign(i.clone(), Expr::Int(0)));
        out.push(Gen::assign(acc.clone(), Expr::Int(0)));
        env.push((i.clone(), GTy::Int));
        env.push((acc.clone(), GTy::Int));
        let bound = 2 + self.rng.below(7) as i64;
        let mut body = Vec::new();
        let mut benv = env.clone();
        match self.rng.below(3) {
            0 => {
                // Nested conditional on parity.
                body.push(Stmt::If {
                    cond: Expr::Binary {
                        op: "==".into(),
                        lhs: Box::new(Expr::Binary {
                            op: "%".into(),
                            lhs: Box::new(Expr::Var(i.clone())),
                            rhs: Box::new(Expr::Int(2)),
                        }),
                        rhs: Box::new(Expr::Int(0)),
                    },
                    then_: vec![Gen::assign(
                        acc.clone(),
                        Expr::Binary {
                            op: "+".into(),
                            lhs: Box::new(Expr::Var(acc.clone())),
                            rhs: Box::new(Expr::Var(i.clone())),
                        },
                    )],
                    else_: Vec::new(),
                });
            }
            1 => {
                // Nested inner loop.
                let j = self.fresh("i");
                body.push(Gen::assign(j.clone(), Expr::Int(0)));
                body.push(Stmt::While {
                    cond: Expr::Binary {
                        op: "<".into(),
                        lhs: Box::new(Expr::Var(j.clone())),
                        rhs: Box::new(Expr::Int(2 + self.rng.below(4) as i64)),
                    },
                    body: vec![
                        Gen::assign(
                            acc.clone(),
                            Expr::Binary {
                                op: "+".into(),
                                lhs: Box::new(Expr::Var(acc.clone())),
                                rhs: Box::new(Expr::Int(1)),
                            },
                        ),
                        Gen::assign(
                            j.clone(),
                            Expr::Binary {
                                op: "+".into(),
                                lhs: Box::new(Expr::Var(j)),
                                rhs: Box::new(Expr::Int(1)),
                            },
                        ),
                    ],
                });
            }
            _ => {
                self.filler(&mut benv, &mut body);
            }
        }
        body.push(Gen::assign(
            i.clone(),
            Expr::Binary {
                op: "+".into(),
                lhs: Box::new(Expr::Var(i.clone())),
                rhs: Box::new(Expr::Int(1)),
            },
        ));
        out.push(Stmt::While {
            cond: Expr::Binary {
                op: "<".into(),
                lhs: Box::new(Expr::Var(i)),
                rhs: Box::new(Expr::Int(bound)),
            },
            body,
        });
    }

    fn gen_func(&mut self, i: usize) -> FuncDef {
        self.ctr = 0;
        let params: Vec<String> = (0..self.sigs[i].params.len())
            .map(|j| format!("p{j}"))
            .collect();
        let param_tys: Vec<TypeAnn> = self.sigs[i]
            .params
            .iter()
            .map(|t| match t {
                GTy::Int => TypeAnn::int(),
                GTy::Ptr(s) => TypeAnn::ptr(format!("s{s}")),
            })
            .collect();
        let ret_ann = match self.sigs[i].ret {
            Ret::Int => TypeAnn::int(),
            Ret::Void => TypeAnn::void(),
            Ret::Ptr(s) => TypeAnn::ptr(format!("s{s}")),
        };
        let mut env: Vec<(String, GTy)> = params
            .iter()
            .cloned()
            .zip(self.sigs[i].params.iter().copied())
            .collect();
        let mut body = Vec::new();
        let ret = self.sigs[i].ret;

        // Main shape. Function 0 always gets the recursive template so
        // the future/touch machinery is exercised on every seed.
        let recursive_home = matches!(env.first(), Some((_, GTy::Ptr(s))) if self.self_field(*s).is_some())
            && ret == Ret::Int;
        if i == 0 || (recursive_home && self.rng.chance(0.4)) {
            self.tree_recursion(i, &mut env, &mut body);
        } else {
            match self.rng.below(3) {
                0 => self.list_walk(&mut env, &mut body),
                1 => self.count_loop(&mut env, &mut body),
                _ => {}
            }
        }

        // Typed filler.
        let nfill = self.rng.below(3) as usize;
        for _ in 0..nfill {
            self.filler(&mut env, &mut body);
        }

        // Final return, matching the declared type. (Returns only ever
        // appear in a guard's then-branch or here, in tail position, so
        // the CFG has no unreachable blocks.)
        match ret {
            Ret::Int => {
                let e = self.int_expr(&env, 1);
                body.push(Stmt::Return(Some(e)));
            }
            Ret::Void => {
                if self.rng.chance(0.3) {
                    body.push(Stmt::Return(None));
                }
            }
            Ret::Ptr(s) => {
                let e = self.ptr_expr(&env, s);
                body.push(Stmt::Return(Some(e)));
            }
        }
        FuncDef {
            name: self.sigs[i].name.clone(),
            params,
            param_tys,
            ret: ret_ann,
            body,
        }
    }
}

// ----- canonical rendering ------------------------------------------------

/// Render a program to canonical DSL source. For generated programs the
/// rendering reparses to the same AST ([`strip_spans`] both sides); for
/// arbitrary parsed programs it is idempotent after one round
/// (render∘parse∘render = render).
pub fn render(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.structs {
        out.push_str(&format!("struct {} {{\n", s.name));
        for f in &s.fields {
            if f.is_pointer {
                out.push_str(&format!("    {} *{}", f.ty, f.name));
                if let Some(a) = f.affinity {
                    out.push_str(&format!(" @ {}", (a * 100.0).round() as i64));
                }
            } else {
                out.push_str(&format!("    {} {}", f.ty, f.name));
            }
            out.push_str(";\n");
        }
        out.push_str("};\n\n");
    }
    for f in &p.funcs {
        let ret = if f.ret.is_pointer {
            format!("{} *", f.ret.name)
        } else {
            format!("{} ", f.ret.name)
        };
        let params: Vec<String> = f
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let ann = f.param_tys.get(i);
                match ann {
                    Some(a) if a.is_pointer => format!("{} *{}", a.name, p),
                    Some(a) => format!("{} {}", a.name, p),
                    None => format!("int {p}"),
                }
            })
            .collect();
        out.push_str(&format!("{ret}{}({}) {{\n", f.name, params.join(", ")));
        render_stmts(&f.body, 1, &mut out);
        out.push_str("}\n\n");
    }
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn render_stmts(stmts: &[Stmt], level: usize, out: &mut String) {
    for s in stmts {
        render_stmt(s, level, out);
    }
}

fn render_stmt(s: &Stmt, level: usize, out: &mut String) {
    match s {
        Stmt::Assign { dst, src, .. } => {
            indent(level, out);
            out.push_str(&format!("{dst} = {};\n", render_expr(src)));
        }
        Stmt::Store {
            base, fields, src, ..
        } => {
            indent(level, out);
            out.push_str(&format!(
                "{base}->{} = {};\n",
                fields.join("->"),
                render_expr(src)
            ));
        }
        Stmt::If { cond, then_, else_ } => {
            indent(level, out);
            out.push_str(&format!("if ({}) {{\n", render_expr(cond)));
            render_stmts(then_, level + 1, out);
            indent(level, out);
            if else_.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                render_stmts(else_, level + 1, out);
                indent(level, out);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body } => {
            indent(level, out);
            out.push_str(&format!("while ({}) {{\n", render_expr(cond)));
            render_stmts(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::ExprStmt(e) => {
            indent(level, out);
            out.push_str(&format!("{};\n", render_expr(e)));
        }
        Stmt::Touch { var, .. } => {
            indent(level, out);
            out.push_str(&format!("touch {var};\n"));
        }
        Stmt::Return(e) => {
            indent(level, out);
            match e {
                Some(e) => out.push_str(&format!("return {};\n", render_expr(e))),
                None => out.push_str("return;\n"),
            }
        }
    }
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Int(n) => n.to_string(),
        Expr::Null => "null".into(),
        Expr::Var(v) => v.clone(),
        Expr::Path { base, fields, .. } => format!("{base}->{}", fields.join("->")),
        Expr::Call {
            func, args, future, ..
        } => {
            let args: Vec<String> = args.iter().map(render_expr).collect();
            let kw = if *future { "futurecall " } else { "" };
            format!("{kw}{func}({})", args.join(", "))
        }
        // Fully parenthesized, so precedence never matters on reparse.
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {op} {})", render_expr(lhs), render_expr(rhs))
        }
        Expr::Unary { op, arg } => format!("{op}({})", render_expr(arg)),
    }
}

// ----- span erasure -------------------------------------------------------

/// A copy of `p` with every span replaced by [`Span::DUMMY`] — the
/// equality the pretty-print→reparse round-trip oracle compares under
/// (generated ASTs carry no source positions; reparsed ones do).
pub fn strip_spans(p: &Program) -> Program {
    Program {
        structs: p.structs.clone(),
        funcs: p
            .funcs
            .iter()
            .map(|f| FuncDef {
                name: f.name.clone(),
                params: f.params.clone(),
                param_tys: f.param_tys.clone(),
                ret: f.ret.clone(),
                body: f.body.iter().map(strip_stmt).collect(),
            })
            .collect(),
    }
}

fn strip_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Assign { dst, src, .. } => Stmt::Assign {
            dst: dst.clone(),
            src: strip_expr(src),
            span: Span::DUMMY,
        },
        Stmt::Store {
            base, fields, src, ..
        } => Stmt::Store {
            base: base.clone(),
            fields: fields.clone(),
            src: strip_expr(src),
            span: Span::DUMMY,
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: strip_expr(cond),
            then_: then_.iter().map(strip_stmt).collect(),
            else_: else_.iter().map(strip_stmt).collect(),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: strip_expr(cond),
            body: body.iter().map(strip_stmt).collect(),
        },
        Stmt::ExprStmt(e) => Stmt::ExprStmt(strip_expr(e)),
        Stmt::Touch { var, .. } => Stmt::Touch {
            var: var.clone(),
            span: Span::DUMMY,
        },
        Stmt::Return(e) => Stmt::Return(e.as_ref().map(strip_expr)),
    }
}

fn strip_expr(e: &Expr) -> Expr {
    match e {
        Expr::Path { base, fields, .. } => Expr::Path {
            base: base.clone(),
            fields: fields.clone(),
            span: Span::DUMMY,
        },
        Expr::Call {
            func, args, future, ..
        } => Expr::Call {
            func: func.clone(),
            args: args.iter().map(strip_expr).collect(),
            future: *future,
            span: Span::DUMMY,
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: op.clone(),
            lhs: Box::new(strip_expr(lhs)),
            rhs: Box::new(strip_expr(rhs)),
        },
        Expr::Unary { op, arg } => Expr::Unary {
            op: op.clone(),
            arg: Box::new(strip_expr(arg)),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typeck::typecheck;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 7, 42, 0xdead_beef] {
            assert_eq!(gen_source(seed), gen_source(seed));
            assert_eq!(gen_program(seed), gen_program(seed));
        }
        // Different seeds almost surely differ; check a couple.
        assert_ne!(gen_source(0), gen_source(1));
    }

    #[test]
    fn generated_programs_round_trip() {
        for seed in 0..60u64 {
            let gp = gen_program(seed);
            let src = render(&gp);
            let reparsed = parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert_eq!(strip_spans(&reparsed), gp, "seed {seed}\n{src}");
        }
    }

    #[test]
    fn generated_programs_typecheck() {
        for seed in 0..60u64 {
            let src = gen_source(seed);
            let p = parse(&src).unwrap();
            let diags = typecheck(&p);
            assert!(diags.is_empty(), "seed {seed}: {diags:#?}\n{src}");
        }
    }

    #[test]
    fn generator_covers_the_grammar() {
        let (mut whiles, mut ifs, mut stores, mut touches, mut futures, mut multi) =
            (0, 0, 0, 0, 0, 0);
        for seed in 0..60u64 {
            let p = gen_program(seed);
            for f in &p.funcs {
                crate::ast::walk_stmts(&f.body, &mut |s| {
                    match s {
                        Stmt::While { .. } => whiles += 1,
                        Stmt::If { .. } => ifs += 1,
                        Stmt::Store { .. } => stores += 1,
                        Stmt::Touch { .. } => touches += 1,
                        _ => {}
                    }
                    s.exprs(&mut |e| match e {
                        Expr::Call { future: true, .. } => futures += 1,
                        Expr::Path { fields, .. } if fields.len() > 1 => multi += 1,
                        _ => {}
                    });
                });
            }
        }
        assert!(whiles > 0, "no loops generated");
        assert!(ifs > 0, "no conditionals generated");
        assert!(stores > 0, "no stores generated");
        assert!(touches > 0, "no touches generated");
        assert!(futures > 0, "no futures generated");
        assert!(multi > 0, "no multi-field paths generated");
    }

    #[test]
    fn render_is_idempotent_on_benchmarks() {
        // For any parsed program: render, reparse, render again — the
        // two renderings must be byte-identical.
        let src = "struct tree { tree *left @ 90; tree *right @ 70; int val; };
                   int TreeAdd(tree *t) {
                       if (t == null) { return 0; }
                       else {
                           int lv = futurecall TreeAdd(t->left);
                           int rv = TreeAdd(t->right);
                           touch lv;
                           return lv + rv + t->val;
                       }
                   }";
        let p1 = parse(src).unwrap();
        let r1 = render(&p1);
        let p2 = parse(&r1).unwrap();
        assert_eq!(render(&p2), r1);
        assert_eq!(strip_spans(&p2), strip_spans(&p1));
    }
}
