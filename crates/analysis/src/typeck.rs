//! A flow-sensitive typechecker for the DSL — the front gate run before
//! racecheck/opt/select.
//!
//! The untyped analyses infer pointer-ness from use; this pass instead
//! *enforces* the declarations the parser records ([`TypeAnn`] on
//! functions, `ty` on fields) so that generated and hand-written
//! programs alike are known to mean what the passes assume:
//!
//! * **Struct/field/pointer types** — every declared type resolves
//!   (`TC001`), every path step names a real field (`TC002`) and only
//!   dereferences pointers (`TC003`), stores match the field's type
//!   (`TC009`).
//! * **Call discipline** — known callees are checked for arity (`TC004`)
//!   and per-argument type (`TC005`); unknown callees are externs, whose
//!   results are unconstrained (mirroring racecheck's extern model).
//! * **Well-structured futures** — `h = futurecall f(…)` makes `h` a
//!   future handle of `f`'s return type; the handle's value exists only
//!   after `touch h`. Using or overwriting an un-touched handle is
//!   `TC008`, touching a non-future is `TC006`, definitely touching
//!   twice is `TC007`. A `touch` on only one branch of an `if` leaves
//!   the handle *maybe-touched*: a later touch is the first touch on
//!   some path, so it is allowed (matching racecheck's conservative
//!   in-flight merge).
//! * **Loop induction-variable discipline** — types are joined over
//!   branch merges and loop back edges to a fixpoint; a variable whose
//!   merged types are irreconcilable (e.g. `x = x->f` stepping to a
//!   different struct each iteration) is `TC009` at its next use.
//!
//! All diagnostics are `Severity::Error` with stable `TC0xx` codes from
//! [`crate::diag::codes`], rendered through the same [`Diagnostic`]
//! framework as the racecheck `RC0xx` findings.

use crate::ast::{Expr, FuncDef, Program, Stmt, StructDef, TypeAnn};
use crate::diag::{codes, Diagnostic, Severity, Span};
use crate::parser::{parse, ParseError};
use std::collections::{HashMap, HashSet};

/// A value type, as inferred flow-sensitively.
#[derive(Clone, Debug, PartialEq)]
pub enum Ty {
    Int,
    /// Pointer to the named (declared) struct.
    Ptr(String),
    /// The null literal: joins with any pointer type.
    Null,
    /// The "result" of a void function.
    Void,
    /// An un-touched future handle; the payload is the value type the
    /// `touch` will produce.
    Future(Box<Ty>),
    /// Unconstrained: extern call results and error recovery.
    Unknown,
    /// Irreconcilable types met at a join; the strings are the two
    /// renderings, kept for the diagnostic at the next use.
    Conflict(String, String),
}

impl Ty {
    fn render(&self) -> String {
        match self {
            Ty::Int => "int".into(),
            Ty::Ptr(s) => format!("{s} *"),
            Ty::Null => "null".into(),
            Ty::Void => "void".into(),
            Ty::Future(inner) => format!("future<{}>", inner.render()),
            Ty::Unknown => "?".into(),
            Ty::Conflict(a, b) => format!("{a} vs {b}"),
        }
    }
}

/// Whether a variable that once held a future has been touched.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Touched {
    No,
    /// Touched on some but not all paths to here.
    Maybe,
    /// Touched on every path.
    Yes,
}

#[derive(Clone, Debug, PartialEq)]
struct VarInfo {
    ty: Ty,
    touched: Touched,
}

type Env = HashMap<String, VarInfo>;

/// Typecheck a whole program. Diagnostics come out sorted by (span,
/// code, message) like [`crate::racecheck::racecheck`]'s.
pub fn typecheck(prog: &Program) -> Vec<Diagnostic> {
    let mut ck = Checker {
        structs: prog.struct_map(),
        funcs: prog.funcs.iter().map(|f| (f.name.as_str(), f)).collect(),
        diags: Vec::new(),
        seen: HashSet::new(),
        report: true,
        assigned: HashSet::new(),
        ret: Ty::Void,
        anchor: Span::DUMMY,
    };
    ck.check_decls(prog);
    for f in &prog.funcs {
        ck.check_func(f);
    }
    let mut out = ck.diags;
    out.sort_by(|a, b| {
        (a.span, a.code, &a.message)
            .partial_cmp(&(b.span, b.code, &b.message))
            .expect("total order")
    });
    out
}

/// Parse then typecheck DSL source.
pub fn typecheck_src(src: &str) -> Result<Vec<Diagnostic>, ParseError> {
    Ok(typecheck(&parse(src)?))
}

struct Checker<'a> {
    structs: HashMap<&'a str, &'a StructDef>,
    funcs: HashMap<&'a str, &'a FuncDef>,
    diags: Vec<Diagnostic>,
    seen: HashSet<(&'static str, Span, String)>,
    /// False while iterating loop bodies to a fixpoint (diagnostics
    /// would be emitted from pre-fixpoint environments, and repeatedly).
    report: bool,
    /// Names that are a parameter of, or assigned somewhere in, the
    /// current function — anything else is `TC012` at use.
    assigned: HashSet<String>,
    /// Declared return type of the current function.
    ret: Ty,
    /// Span of the statement being checked, used for expression-level
    /// diagnostics on nodes that carry no span of their own.
    anchor: Span,
}

/// Loop-body fixpoint bound. The type lattice has tiny height (Null <
/// Ptr, anything → Conflict/Unknown, one Maybe step for touches), so a
/// handful of rounds always converges; the bound is a safety net.
const MAX_LOOP_ITERS: usize = 5;

impl<'a> Checker<'a> {
    fn emit(&mut self, code: &'static str, span: Span, message: String) {
        if self.report && self.seen.insert((code, span, message.clone())) {
            self.diags
                .push(Diagnostic::new(code, Severity::Error, span, message));
        }
    }

    /// Resolve a declared annotation to a value type, reporting `TC001`
    /// for names that do not resolve. `where_` names the declaration
    /// site for the message.
    fn resolve_ann(&mut self, ann: &TypeAnn, where_: &str) -> Ty {
        if ann.is_pointer {
            if self.structs.contains_key(ann.name.as_str()) {
                Ty::Ptr(ann.name.clone())
            } else {
                self.emit(
                    codes::UNKNOWN_TYPE,
                    Span::DUMMY,
                    format!(
                        "pointer type `{} *` of {where_} names no declared struct",
                        ann.name
                    ),
                );
                Ty::Unknown
            }
        } else {
            match ann.name.as_str() {
                "int" => Ty::Int,
                "void" => Ty::Void,
                _ => {
                    self.emit(
                        codes::UNKNOWN_TYPE,
                        Span::DUMMY,
                        format!(
                            "type `{}` of {where_} is neither `int`, `void`, nor a pointer",
                            ann.name
                        ),
                    );
                    Ty::Unknown
                }
            }
        }
    }

    /// Program-level checks: duplicate definitions and declared-type
    /// resolution for every struct field and function signature.
    fn check_decls(&mut self, prog: &Program) {
        let mut struct_names = HashSet::new();
        for s in &prog.structs {
            if !struct_names.insert(s.name.as_str()) {
                self.emit(
                    codes::DUPLICATE_DEF,
                    Span::DUMMY,
                    format!("duplicate struct `{}`", s.name),
                );
            }
            let mut field_names = HashSet::new();
            for fd in &s.fields {
                if !field_names.insert(fd.name.as_str()) {
                    self.emit(
                        codes::DUPLICATE_DEF,
                        Span::DUMMY,
                        format!("duplicate field `{}` in struct `{}`", fd.name, s.name),
                    );
                }
                let ann = TypeAnn {
                    name: fd.ty.clone(),
                    is_pointer: fd.is_pointer,
                };
                let where_ = format!("field `{}.{}`", s.name, fd.name);
                if !fd.is_pointer && fd.ty != "int" {
                    // By-value struct (or void) fields are outside the
                    // subset: every non-scalar lives behind a pointer.
                    self.emit(
                        codes::UNKNOWN_TYPE,
                        Span::DUMMY,
                        format!("{where_} must be `int` or a pointer, not `{}`", fd.ty),
                    );
                } else {
                    self.resolve_ann(&ann, &where_);
                }
            }
        }
        let mut func_names = HashSet::new();
        for f in &prog.funcs {
            if !func_names.insert(f.name.as_str()) {
                self.emit(
                    codes::DUPLICATE_DEF,
                    Span::DUMMY,
                    format!("duplicate function `{}`", f.name),
                );
            }
            let mut param_names = HashSet::new();
            for (i, p) in f.params.iter().enumerate() {
                if !param_names.insert(p.as_str()) {
                    self.emit(
                        codes::DUPLICATE_DEF,
                        Span::DUMMY,
                        format!("duplicate parameter `{p}` of `{}`", f.name),
                    );
                }
                if let Some(ann) = f.param_tys.get(i) {
                    if !ann.is_pointer && ann.name == "void" {
                        self.emit(
                            codes::UNKNOWN_TYPE,
                            Span::DUMMY,
                            format!("parameter `{p}` of `{}` cannot be void", f.name),
                        );
                    } else {
                        let where_ = format!("parameter `{p}` of `{}`", f.name);
                        self.resolve_ann(ann, &where_);
                    }
                }
            }
            let where_ = format!("return of `{}`", f.name);
            self.resolve_ann(&f.ret, &where_);
        }
    }

    /// Declared value type of an annotation without reporting — used at
    /// call sites and returns, where `check_decls` already reported any
    /// bad declaration once.
    fn ann_ty(&self, ann: &TypeAnn) -> Ty {
        if ann.is_pointer {
            if self.structs.contains_key(ann.name.as_str()) {
                Ty::Ptr(ann.name.clone())
            } else {
                Ty::Unknown
            }
        } else {
            match ann.name.as_str() {
                "int" => Ty::Int,
                "void" => Ty::Void,
                _ => Ty::Unknown,
            }
        }
    }

    fn check_func(&mut self, f: &'a FuncDef) {
        self.ret = self.ann_ty(&f.ret);
        self.assigned = f.params.iter().cloned().collect();
        let mut touch_vars = Vec::new();
        crate::ast::walk_stmts(&f.body, &mut |s| match s {
            Stmt::Assign { dst, .. } => {
                touch_vars.push(dst.clone());
            }
            Stmt::Touch { var, .. } => {
                touch_vars.push(var.clone());
            }
            _ => {}
        });
        self.assigned.extend(touch_vars);
        let mut env: Env = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            let ty = f
                .param_tys
                .get(i)
                .map(|a| self.ann_ty(a))
                .unwrap_or(Ty::Unknown);
            env.insert(
                p.clone(),
                VarInfo {
                    ty,
                    touched: Touched::No,
                },
            );
        }
        self.walk_block(&f.body, &mut env);
    }

    fn walk_block(&mut self, stmts: &[Stmt], env: &mut Env) {
        for s in stmts {
            self.walk_stmt(s, env);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt, env: &mut Env) {
        match s {
            Stmt::Assign { dst, src, span } => {
                self.anchor = *span;
                let t = self.infer(src, env);
                if let Some(info) = env.get(dst) {
                    if matches!(info.ty, Ty::Future(_)) {
                        self.emit(
                            codes::FUTURE_UNTOUCHED_USE,
                            *span,
                            format!("future handle `{dst}` overwritten before its touch"),
                        );
                    }
                }
                let ty = match t {
                    Ty::Void => {
                        self.emit(
                            codes::INVALID_OPERAND,
                            *span,
                            format!("`{dst}` is assigned the result of a void call"),
                        );
                        Ty::Unknown
                    }
                    other => other,
                };
                env.insert(
                    dst.clone(),
                    VarInfo {
                        ty,
                        touched: Touched::No,
                    },
                );
            }
            Stmt::Store {
                base,
                fields,
                src,
                span,
            } => {
                self.anchor = *span;
                let vt = self.infer(src, env);
                let slot = self.path_ty(base, fields, *span, env);
                if matches!(vt, Ty::Void) {
                    self.emit(
                        codes::INVALID_OPERAND,
                        *span,
                        "a void value is stored through a pointer path".into(),
                    );
                } else if !store_compatible(&slot, &vt) {
                    self.emit(
                        codes::TYPE_CONFLICT,
                        *span,
                        format!(
                            "store to `{base}->{}` of type {} with a value of type {}",
                            fields.join("->"),
                            slot.render(),
                            vt.render()
                        ),
                    );
                }
            }
            Stmt::If { cond, then_, else_ } => {
                self.check_cond(cond, env);
                let mut e1 = env.clone();
                let mut e2 = env.clone();
                self.walk_block(then_, &mut e1);
                self.walk_block(else_, &mut e2);
                *env = join_env(&e1, &e2);
            }
            Stmt::While { cond, body } => {
                // Fixpoint over the back edge, silently; then one
                // reporting pass of cond + body from the stable head.
                let mut head = env.clone();
                let was = self.report;
                self.report = false;
                for _ in 0..MAX_LOOP_ITERS {
                    let mut e = head.clone();
                    self.check_cond(cond, &e);
                    self.walk_block(body, &mut e);
                    let joined = join_env(&head, &e);
                    if joined == head {
                        break;
                    }
                    head = joined;
                }
                self.report = was;
                self.check_cond(cond, &head);
                let mut e = head.clone();
                self.walk_block(body, &mut e);
                // Zero or more iterations: the fixpoint head already
                // includes the entry env.
                *env = head;
            }
            Stmt::ExprStmt(e) => {
                self.anchor = expr_anchor(e).unwrap_or(Span::DUMMY);
                // Bare `futurecall f(…);` discards its handle: type-legal
                // (fire-and-forget); the racecheck pass owns RC003.
                let _ = self.infer(e, env);
            }
            Stmt::Touch { var, span } => {
                self.anchor = *span;
                match env.get_mut(var) {
                    Some(info) => {
                        if let Ty::Future(inner) = info.ty.clone() {
                            info.ty = *inner;
                            info.touched = Touched::Yes;
                        } else {
                            match info.touched {
                                Touched::Yes => self.emit(
                                    codes::DOUBLE_TOUCH,
                                    *span,
                                    format!("future `{var}` is already touched on every path"),
                                ),
                                Touched::Maybe => info.touched = Touched::Yes,
                                Touched::No => {
                                    // Unknown may be anything, including a
                                    // future from an extern: stay quiet.
                                    if info.ty != Ty::Unknown {
                                        self.emit(
                                            codes::TOUCH_NON_FUTURE,
                                            *span,
                                            format!(
                                                "touch of `{var}`, which holds {} — not a future",
                                                info.ty.render()
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        self.emit(
                            codes::TOUCH_NON_FUTURE,
                            *span,
                            format!("touch of `{var}`, which holds no future here"),
                        );
                    }
                }
            }
            Stmt::Return(e) => {
                self.anchor = e.as_ref().and_then(expr_anchor).unwrap_or(Span::DUMMY);
                let anchor = self.anchor;
                match (e, self.ret.clone()) {
                    (Some(expr), Ty::Void) => {
                        let _ = self.infer(expr, env);
                        self.emit(
                            codes::RETURN_MISMATCH,
                            anchor,
                            "a void function returns a value".into(),
                        );
                    }
                    (Some(expr), want) => {
                        let got = self.infer(expr, env);
                        if !store_compatible(&want, &got) {
                            self.emit(
                                codes::RETURN_MISMATCH,
                                anchor,
                                format!(
                                    "return of type {} from a function declared {}",
                                    got.render(),
                                    want.render()
                                ),
                            );
                        }
                    }
                    (None, Ty::Void) => {}
                    (None, want) => {
                        self.emit(
                            codes::RETURN_MISMATCH,
                            anchor,
                            format!("bare `return;` in a function declared {}", want.render()),
                        );
                    }
                }
            }
        }
    }

    fn check_cond(&mut self, cond: &Expr, env: &Env) {
        self.anchor = expr_anchor(cond).unwrap_or(Span::DUMMY);
        let anchor = self.anchor;
        let t = self.infer(cond, env);
        if t == Ty::Void {
            self.emit(
                codes::INVALID_OPERAND,
                anchor,
                "a void value is used as a condition".into(),
            );
        }
    }

    /// Look up a variable use, reporting un-touched futures, conflicts,
    /// and undefined names. Returns the recovered type.
    fn use_var(&mut self, v: &str, span: Span, env: &Env) -> Ty {
        match env.get(v) {
            Some(info) => match &info.ty {
                Ty::Future(_) => {
                    self.emit(
                        codes::FUTURE_UNTOUCHED_USE,
                        span,
                        format!("future handle `{v}` is used before its touch"),
                    );
                    Ty::Unknown
                }
                Ty::Conflict(a, b) => {
                    self.emit(
                        codes::TYPE_CONFLICT,
                        span,
                        format!("`{v}` has irreconcilable types on merging paths ({a} vs {b})"),
                    );
                    Ty::Unknown
                }
                other => other.clone(),
            },
            None => {
                if !self.assigned.contains(v) {
                    self.emit(
                        codes::UNDEFINED_VAR,
                        span,
                        format!("`{v}` is neither a parameter nor assigned in this function"),
                    );
                }
                // Assigned later in the function (or not at all): no
                // flow-sensitive information yet.
                Ty::Unknown
            }
        }
    }

    /// Type of `base->f1->…->fk`, checking each step.
    fn path_ty(&mut self, base: &str, fields: &[String], span: Span, env: &Env) -> Ty {
        let mut cur = self.use_var(base, span, env);
        for (i, f) in fields.iter().enumerate() {
            let last = i + 1 == fields.len();
            match cur {
                Ty::Ptr(ref sname) => {
                    let Some(sd) = self.structs.get(sname.as_str()).copied() else {
                        return Ty::Unknown;
                    };
                    match sd.fields.iter().find(|fd| fd.name == *f) {
                        None => {
                            let sname = sname.clone();
                            self.emit(
                                codes::UNKNOWN_FIELD,
                                span,
                                format!("struct `{sname}` has no field `{f}`"),
                            );
                            return Ty::Unknown;
                        }
                        Some(fd) => {
                            if fd.is_pointer {
                                cur = if self.structs.contains_key(fd.ty.as_str()) {
                                    Ty::Ptr(fd.ty.clone())
                                } else {
                                    Ty::Unknown
                                };
                            } else if last {
                                cur = Ty::Int;
                            } else {
                                self.emit(
                                    codes::NON_POINTER_DEREF,
                                    span,
                                    format!("`->` through non-pointer field `{f}`"),
                                );
                                return Ty::Unknown;
                            }
                        }
                    }
                }
                Ty::Int => {
                    self.emit(
                        codes::NON_POINTER_DEREF,
                        span,
                        format!("`->{f}` applied to a value of type int"),
                    );
                    return Ty::Unknown;
                }
                Ty::Void => {
                    self.emit(
                        codes::INVALID_OPERAND,
                        span,
                        format!("`->{f}` applied to a void value"),
                    );
                    return Ty::Unknown;
                }
                // Null: statically null-typed only until a real pointer
                // joins in; be quiet (the flow may refine it later).
                // Unknown/Future/Conflict: already reported or externs.
                _ => return Ty::Unknown,
            }
        }
        cur
    }

    fn infer(&mut self, e: &Expr, env: &Env) -> Ty {
        match e {
            Expr::Int(_) => Ty::Int,
            Expr::Null => Ty::Null,
            Expr::Var(v) => self.use_var(v, self.anchor, env),
            Expr::Path { base, fields, span } => self.path_ty(base, fields, *span, env),
            Expr::Call {
                func,
                args,
                future,
                span,
            } => {
                let arg_tys: Vec<Ty> = args.iter().map(|a| self.infer(a, env)).collect();
                let ret = if let Some(fd) = self.funcs.get(func.as_str()).copied() {
                    if arg_tys.len() != fd.params.len() {
                        self.emit(
                            codes::CALL_ARITY,
                            *span,
                            format!(
                                "call to `{func}` passes {} argument(s), expected {}",
                                arg_tys.len(),
                                fd.params.len()
                            ),
                        );
                    } else {
                        for (i, (at, ann)) in arg_tys.iter().zip(&fd.param_tys).enumerate() {
                            let want = self.ann_ty(ann);
                            if !matches!(at, Ty::Void) && !store_compatible(&want, at) {
                                self.emit(
                                    codes::ARG_TYPE,
                                    *span,
                                    format!(
                                        "argument {} of `{func}` has type {}, expected {}",
                                        i + 1,
                                        at.render(),
                                        want.render()
                                    ),
                                );
                            }
                            if matches!(at, Ty::Void) {
                                self.emit(
                                    codes::INVALID_OPERAND,
                                    *span,
                                    format!("argument {} of `{func}` is a void value", i + 1),
                                );
                            }
                        }
                    }
                    self.ann_ty(&fd.ret)
                } else {
                    // Extern callee: unconstrained, like racecheck's
                    // read-only extern model.
                    Ty::Unknown
                };
                if *future {
                    Ty::Future(Box::new(ret))
                } else {
                    ret
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.infer(lhs, env);
                let rt = self.infer(rhs, env);
                let arith = matches!(
                    op.as_str(),
                    "+" | "-" | "*" | "/" | "%" | "<" | ">" | "<=" | ">="
                );
                for t in [&lt, &rt] {
                    match t {
                        Ty::Void => {
                            let anchor = self.anchor;
                            self.emit(
                                codes::INVALID_OPERAND,
                                anchor,
                                format!("void value used as an operand of `{op}`"),
                            );
                        }
                        Ty::Ptr(_) | Ty::Null if arith => {
                            let anchor = self.anchor;
                            self.emit(
                                codes::INVALID_OPERAND,
                                anchor,
                                format!("pointer used as an operand of arithmetic `{op}`"),
                            );
                        }
                        _ => {}
                    }
                }
                Ty::Int
            }
            Expr::Unary { op, arg } => {
                let t = self.infer(arg, env);
                if t == Ty::Void || (op == "-" && matches!(t, Ty::Ptr(_) | Ty::Null)) {
                    let anchor = self.anchor;
                    self.emit(
                        codes::INVALID_OPERAND,
                        anchor,
                        format!("invalid operand of type {} for unary `{op}`", t.render()),
                    );
                }
                Ty::Int
            }
        }
    }
}

/// Can a value of type `got` flow into a slot declared `want`?
/// (`Unknown` on either side is compatible — error recovery and externs
/// never cascade.)
fn store_compatible(want: &Ty, got: &Ty) -> bool {
    match (want, got) {
        (Ty::Unknown, _) | (_, Ty::Unknown) => true,
        (Ty::Int, Ty::Int) => true,
        (Ty::Ptr(_), Ty::Null) => true,
        (Ty::Ptr(a), Ty::Ptr(b)) => a == b,
        // A conflicted value was already reported at its use.
        (_, Ty::Conflict(..)) => true,
        _ => false,
    }
}

/// Where is this expression, for diagnostics? The first span-carrying
/// node in evaluation order, if any.
fn expr_anchor(e: &Expr) -> Option<Span> {
    let mut found = None;
    e.walk(&mut |sub| {
        if found.is_none() {
            match sub {
                Expr::Path { span, .. } | Expr::Call { span, .. } => found = Some(*span),
                _ => {}
            }
        }
    });
    found
}

fn join_ty(a: &Ty, b: &Ty) -> (Ty, Option<Touched>) {
    if a == b {
        return (a.clone(), None);
    }
    match (a, b) {
        // Conflict is sticky — it must survive joining with the Unknown
        // its own error-recovery produces, or a loop's second fixpoint
        // iteration would silently wash the conflict out.
        (Ty::Conflict(x, y), _) | (_, Ty::Conflict(x, y)) => {
            (Ty::Conflict(x.clone(), y.clone()), None)
        }
        (Ty::Unknown, _) | (_, Ty::Unknown) => (Ty::Unknown, None),
        (Ty::Null, Ty::Ptr(s)) | (Ty::Ptr(s), Ty::Null) => (Ty::Ptr(s.clone()), None),
        (Ty::Future(x), Ty::Future(y)) => {
            let (inner, _) = join_ty(x, y);
            (Ty::Future(Box::new(inner)), None)
        }
        // Touched on one path, in flight on the other: the value type if
        // they agree, marked maybe-touched.
        (Ty::Future(x), other) | (other, Ty::Future(x)) => {
            let (inner, _) = join_ty(x, other);
            if matches!(inner, Ty::Conflict(..)) {
                (inner, None)
            } else {
                (inner, Some(Touched::Maybe))
            }
        }
        _ => (Ty::Conflict(a.render(), b.render()), None),
    }
}

fn join_touched(a: Touched, b: Touched) -> Touched {
    match (a, b) {
        (Touched::Yes, Touched::Yes) => Touched::Yes,
        (Touched::No, Touched::No) => Touched::No,
        _ => Touched::Maybe,
    }
}

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, va) in a {
        match b.get(k) {
            Some(vb) => {
                let (ty, forced) = join_ty(&va.ty, &vb.ty);
                let touched = forced.unwrap_or_else(|| join_touched(va.touched, vb.touched));
                out.insert(k.clone(), VarInfo { ty, touched });
            }
            // Declared on one path only: function-scoped, keep it.
            None => {
                out.insert(k.clone(), va.clone());
            }
        }
    }
    for (k, vb) in b {
        if !a.contains_key(k) {
            out.insert(k.clone(), vb.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_of(src: &str) -> Vec<&'static str> {
        typecheck_src(src)
            .expect("parses")
            .iter()
            .map(|d| d.code)
            .collect()
    }

    fn clean(src: &str) {
        let diags = typecheck_src(src).expect("parses");
        assert!(diags.is_empty(), "expected clean, got {diags:#?}");
    }

    const TREE: &str = "struct tree { tree *left @ 90; tree *right @ 70; int val; };";

    #[test]
    fn accepts_figure4_treeadd() {
        clean(&format!(
            "{TREE}
             int TreeAdd(tree *t) {{
                 if (t == null) {{ return 0; }}
                 else {{
                     int lv = futurecall TreeAdd(t->left);
                     int rv = TreeAdd(t->right);
                     touch lv;
                     return lv + rv + t->val;
                 }}
             }}"
        ));
    }

    #[test]
    fn unknown_pointer_type_is_tc001() {
        assert_eq!(
            codes_of("struct s { ghost *n; };"),
            vec![codes::UNKNOWN_TYPE]
        );
        assert_eq!(
            codes_of("struct s { s *n; }; void f(ghost *g) { }"),
            vec![codes::UNKNOWN_TYPE]
        );
        assert_eq!(
            codes_of("struct s { s *n; }; ghost f(s *x) { }"),
            vec![codes::UNKNOWN_TYPE]
        );
    }

    #[test]
    fn unknown_field_is_tc002() {
        assert_eq!(
            codes_of(&format!("{TREE} int f(tree *t) {{ return t->missing; }}")),
            vec![codes::UNKNOWN_FIELD]
        );
    }

    #[test]
    fn non_pointer_deref_is_tc003() {
        assert_eq!(
            codes_of(&format!("{TREE} int f(tree *t) {{ return t->val->val; }}")),
            vec![codes::NON_POINTER_DEREF]
        );
        assert_eq!(
            codes_of(&format!("{TREE} int f(int x) {{ return x->val; }}")),
            vec![codes::NON_POINTER_DEREF]
        );
    }

    #[test]
    fn call_arity_is_tc004() {
        assert_eq!(
            codes_of(&format!(
                "{TREE} int g(tree *t) {{ return 0; }} int f(tree *t) {{ return g(t, 1); }}"
            )),
            vec![codes::CALL_ARITY]
        );
    }

    #[test]
    fn arg_type_is_tc005() {
        assert_eq!(
            codes_of(&format!(
                "{TREE} int g(tree *t) {{ return 0; }} int f(tree *t) {{ return g(3); }}"
            )),
            vec![codes::ARG_TYPE]
        );
        // Pointers to the wrong struct are caught too.
        assert_eq!(
            codes_of(
                "struct a { a *n; }; struct b { b *n; };
                 int g(a *x) { return 0; }
                 int f(b *y) { return g(y); }"
            ),
            vec![codes::ARG_TYPE]
        );
    }

    #[test]
    fn extern_calls_are_unconstrained() {
        clean(&format!(
            "{TREE} int f(tree *t) {{ int d = dist(t, 1, 2, 3); return d; }}"
        ));
    }

    #[test]
    fn touch_non_future_is_tc006() {
        assert_eq!(
            codes_of(&format!("{TREE} int f(int x) {{ touch x; return x; }}")),
            vec![codes::TOUCH_NON_FUTURE]
        );
    }

    #[test]
    fn double_touch_is_tc007() {
        assert_eq!(
            codes_of(&format!(
                "{TREE} int g(tree *t) {{ return 1; }}
                 int f(tree *t) {{
                     int h = futurecall g(t);
                     touch h;
                     touch h;
                     return h;
                 }}"
            )),
            vec![codes::DOUBLE_TOUCH]
        );
    }

    #[test]
    fn touch_on_one_branch_then_touch_is_legal() {
        // The second touch is the first on the else path — matching
        // racecheck's conservative merge, this is allowed.
        clean(&format!(
            "{TREE} int g(tree *t) {{ return 1; }}
             int f(tree *t, int c) {{
                 int h = futurecall g(t);
                 if (c) {{ touch h; }}
                 touch h;
                 return h;
             }}"
        ));
    }

    #[test]
    fn untouched_future_use_is_tc008() {
        assert_eq!(
            codes_of(&format!(
                "{TREE} int g(tree *t) {{ return 1; }}
                 int f(tree *t) {{
                     int h = futurecall g(t);
                     return h;
                 }}"
            )),
            vec![codes::FUTURE_UNTOUCHED_USE]
        );
        // Overwriting an in-flight handle loses the join.
        assert_eq!(
            codes_of(&format!(
                "{TREE} int g(tree *t) {{ return 1; }}
                 int f(tree *t) {{
                     int h = futurecall g(t);
                     h = 3;
                     return h;
                 }}"
            )),
            vec![codes::FUTURE_UNTOUCHED_USE]
        );
    }

    #[test]
    fn bare_futurecall_is_legal() {
        // Fire-and-forget: the racecheck pass owns RC003.
        clean(&format!(
            "{TREE} int g(tree *t) {{ return 1; }}
             void f(tree *t) {{ futurecall g(t); }}"
        ));
    }

    #[test]
    fn branch_type_conflict_is_tc009() {
        assert_eq!(
            codes_of(&format!(
                "{TREE} int f(tree *t, int c) {{
                     int x = 0;
                     if (c) {{ x = 1; }} else {{ x = t; }}
                     return x;
                 }}"
            )),
            vec![codes::TYPE_CONFLICT]
        );
    }

    #[test]
    fn loop_induction_discipline_is_tc009() {
        // x steps to a *different* struct each iteration: the back-edge
        // join is irreconcilable.
        assert_eq!(
            codes_of(
                "struct a { b *n; int v; }; struct b { a *n; int v; };
                 void f(a *x, int c) {
                     while (c) { x = x->n; }
                 }"
            ),
            vec![codes::TYPE_CONFLICT]
        );
        // Stepping within one struct is the well-typed induction shape.
        clean(
            "struct a { a *n; int v; };
             void f(a *x, int c) {
                 while (c) { x = x->n; }
             }",
        );
    }

    #[test]
    fn store_type_mismatch_is_tc009() {
        assert_eq!(
            codes_of(&format!("{TREE} void f(tree *t) {{ t->left = 3; }}")),
            vec![codes::TYPE_CONFLICT]
        );
        clean(&format!(
            "{TREE} void f(tree *t) {{ t->left = t->right; t->val = 4; t->left = null; }}"
        ));
    }

    #[test]
    fn void_misuse_is_tc010() {
        assert_eq!(
            codes_of(&format!(
                "{TREE} void g(tree *t) {{ }} int f(tree *t) {{ int x = g(t); return x; }}"
            )),
            vec![codes::INVALID_OPERAND]
        );
        let pointer_arith = codes_of(&format!("{TREE} int f(tree *t) {{ return t + 1; }}"));
        assert!(
            pointer_arith.contains(&codes::INVALID_OPERAND),
            "{pointer_arith:?}"
        );
    }

    #[test]
    fn return_mismatch_is_tc011() {
        assert_eq!(
            codes_of(&format!("{TREE} void f(tree *t) {{ return 3; }}")),
            vec![codes::RETURN_MISMATCH]
        );
        assert_eq!(
            codes_of(&format!("{TREE} int f(tree *t) {{ return t; }}")),
            vec![codes::RETURN_MISMATCH]
        );
        assert_eq!(
            codes_of(&format!("{TREE} int f(tree *t) {{ return; }}")),
            vec![codes::RETURN_MISMATCH]
        );
        clean(&format!(
            "{TREE} tree *f(tree *t) {{ if (t == null) {{ return null; }} return t->left; }}"
        ));
    }

    #[test]
    fn undefined_var_is_tc012() {
        assert_eq!(
            codes_of(&format!("{TREE} int f(tree *t) {{ return ghost; }}")),
            vec![codes::UNDEFINED_VAR]
        );
        // Assigned later in the function: flow recovers, no report.
        clean(&format!(
            "{TREE} int f(tree *t, int c) {{
                 int acc = 0;
                 while (c) {{ acc = acc + x; int x = 1; }}
                 return acc;
             }}"
        ));
    }

    #[test]
    fn duplicates_are_tc013() {
        assert_eq!(
            codes_of("struct s { s *n; }; struct s { s *n; };"),
            vec![codes::DUPLICATE_DEF]
        );
        assert_eq!(
            codes_of("struct s { s *n; s *n; };"),
            vec![codes::DUPLICATE_DEF]
        );
        assert_eq!(
            codes_of("void f() { } void f() { }"),
            vec![codes::DUPLICATE_DEF]
        );
        assert_eq!(
            codes_of("struct s { s *n; }; void f(s *x, s *x) { }"),
            vec![codes::DUPLICATE_DEF]
        );
    }

    #[test]
    fn loop_respawn_of_touched_handle_is_legal() {
        // The MST shape: the handle is respawned each iteration after
        // being touched — the back-edge join must not report.
        clean(
            "struct block { block *next; int v; };
             int scan(block *b) { return b->v; }
             int sweep(block *b) {
                 int best = 0;
                 while (b != null) {
                     int m = futurecall scan(b);
                     touch m;
                     if (m < best) { best = m; }
                     b = b->next;
                 }
                 return best;
             }",
        );
    }

    #[test]
    fn diagnostics_carry_real_spans() {
        let diags = typecheck_src(
            "struct tree { tree *left; int val; };\nint f(tree *t) {\n  return t->ghost;\n}",
        )
        .unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span, Span::new(3, 10));
        assert_eq!(diags[0].code, codes::UNKNOWN_FIELD);
    }
}
