//! The executable IR: flattened basic blocks over gptr loads and stores.
//!
//! [`crate::lower::lower_ir`] lowers a type-checked DSL program into this
//! form; `olden_runtime::interp` executes it against any `Backend`. The
//! IR is deliberately tiny — a register machine whose only memory
//! operations are the DSL's pointer-path loads and stores, plus
//! `futurecall`/`touch` — because the whole point is that every heap
//! access goes through a *check site* carrying the live olden-select
//! verdict for that dereference.
//!
//! Two invariants tie the IR to the analysis stack:
//!
//! 1. **Site identity.** `IrFunc::sites` lists one [`IrSite`] per pointer
//!    check, *in evaluation order*, and each carries the exact
//!    [`crate::SiteVerdict::key`] string of the corresponding
//!    `MechTable` verdict. Lowering fails rather than guess if its site
//!    stream ever disagrees with the table's — the same order the CFG
//!    lowering and the optimizer use.
//! 2. **Trip identity.** Loop-head blocks carry the
//!    [`crate::cost::loop_key`] of their control loop, and recursive
//!    functions carry their recursion loop's key, so an interpreter can
//!    measure the per-loop trip counts the static cost model
//!    ([`crate::predict`]) takes as input — making predictions and
//!    executions directly comparable.

use crate::Mech;

/// A virtual register (per-function, dynamically typed at run time).
pub type Reg = usize;

/// A basic-block index within an [`IrFunc`].
pub type BlockId = usize;

/// Static type of a function parameter: what the heap builder must
/// construct for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IrTy {
    /// An integer (also the fallback for `Unknown`-typed parameters).
    Int,
    /// A pointer to instances of `structs[idx]`.
    Ptr(usize),
}

/// One field of a lowered structure.
#[derive(Clone, Debug)]
pub struct IrField {
    pub name: String,
    /// Word offset within the object. Field names are global (as in the
    /// paper's examples), so offsets are assigned program-wide: two
    /// structs sharing a field name share its slot.
    pub word: usize,
    pub is_pointer: bool,
    /// Index of the pointed-to struct, when declared and resolvable.
    pub target: Option<usize>,
    /// Path-affinity the heap builder should realize for this edge.
    pub affinity: f64,
}

/// A lowered structure: its heap footprint and fields.
#[derive(Clone, Debug)]
pub struct IrStruct {
    pub name: String,
    /// Allocation size in words (max field slot + 1).
    pub words: usize,
    pub fields: Vec<IrField>,
}

/// One pointer-check site: a single arrow of a `base->f1->…->fk` path.
#[derive(Clone, Debug)]
pub struct IrSite {
    /// The `MechTable` verdict key this site executes under:
    /// `"{func} {span} {site} -> {mech}"`.
    pub key: String,
    /// The mechanism olden-select chose for this dereference.
    pub mech: Mech,
    /// Word offset of the accessed field.
    pub field: usize,
    /// True when the field is pointer-typed (the loaded word is a gptr).
    pub loads_ptr: bool,
    /// True when this site is the final arrow of a store.
    pub is_store: bool,
}

/// Binary operators (the parser's full set; `&&`/`||` are strict, like
/// the CFG lowering, which evaluates both operands unconditionally).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn parse(op: &str) -> Option<BinOp> {
        Some(match op {
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            "/" => BinOp::Div,
            "%" => BinOp::Rem,
            "==" => BinOp::Eq,
            "!=" => BinOp::Ne,
            "<" => BinOp::Lt,
            ">" => BinOp::Gt,
            "<=" => BinOp::Le,
            ">=" => BinOp::Ge,
            "&&" => BinOp::And,
            "||" => BinOp::Or,
            _ => return None,
        })
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Instructions. `Load`/`Store` are the only heap operations; `site`
/// indexes the enclosing function's [`IrFunc::sites`].
#[derive(Clone, Debug)]
pub enum Inst {
    /// `dst = n`.
    ConstInt { dst: Reg, val: i64 },
    /// `dst = null`.
    ConstNull { dst: Reg },
    /// `dst = src`.
    Copy { dst: Reg, src: Reg },
    /// `dst = op arg`.
    Un { dst: Reg, op: UnOp, arg: Reg },
    /// `dst = lhs op rhs`.
    Bin {
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
    },
    /// `dst = base->field` through check site `site`. A null (or
    /// non-pointer) base yields the field type's zero without touching
    /// the heap — the guard the DSL's `if (p == null)` idiom relies on.
    Load { dst: Reg, base: Reg, site: usize },
    /// `base->field = src` through check site `site`; a null base is a
    /// no-op.
    Store { base: Reg, src: Reg, site: usize },
    /// `dst = funcs[func](args…)` under a procedure-call boundary.
    Call {
        dst: Reg,
        func: usize,
        args: Vec<Reg>,
    },
    /// `dst = futurecall funcs[func](args…)`: `dst` holds the pending
    /// future until a `Touch` of the same register claims it.
    FutureCall {
        dst: Reg,
        func: usize,
        args: Vec<Reg>,
    },
    /// A call to an undefined (extern) function: a deterministic pure
    /// function of the callee name and argument values.
    ExternCall {
        dst: Reg,
        name: String,
        args: Vec<Reg>,
    },
    /// `touch reg`: claim the future pending in `reg` (no-op if `reg`
    /// holds a plain value).
    Touch { reg: Reg },
}

/// Block terminators.
#[derive(Clone, Debug)]
pub enum Term {
    Jump(BlockId),
    Branch {
        cond: Reg,
        then_: BlockId,
        else_: BlockId,
    },
    Ret(Option<Reg>),
}

/// One basic block.
#[derive(Clone, Debug)]
pub struct IrBlock {
    pub insts: Vec<Inst>,
    pub term: Term,
    /// Set on the body-entry block of a `while`: index into
    /// [`IrProgram::trip_keys`] to bump once per iteration.
    pub trip_slot: Option<usize>,
}

/// A lowered function.
#[derive(Clone, Debug)]
pub struct IrFunc {
    pub name: String,
    /// Parameter types (the heap builder constructs one value each);
    /// parameters occupy registers `0..params.len()`.
    pub params: Vec<IrTy>,
    /// True when the declared return type is non-void (the checksum
    /// folds the value in).
    pub returns_value: bool,
    pub nregs: usize,
    /// Entry is block 0.
    pub blocks: Vec<IrBlock>,
    /// Check sites in evaluation order, keyed to the `MechTable`.
    pub sites: Vec<IrSite>,
    /// Index into [`IrProgram::trip_keys`] of this function's recursion
    /// control loop, bumped once per invocation (present iff the
    /// function is directly recursive).
    pub rec_slot: Option<usize>,
}

/// A whole lowered program.
#[derive(Clone, Debug)]
pub struct IrProgram {
    pub structs: Vec<IrStruct>,
    pub funcs: Vec<IrFunc>,
    /// Every control-loop key ([`crate::cost::loop_key`]) in discovery
    /// order; trip counters are indexed by position.
    pub trip_keys: Vec<String>,
}

impl IrProgram {
    /// Index of the named function.
    pub fn func(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }

    /// Total check sites across all functions.
    pub fn site_count(&self) -> usize {
        self.funcs.iter().map(|f| f.sites.len()).sum()
    }

    /// All site keys in program order — by construction byte-equal to
    /// [`crate::MechTable::keys`].
    pub fn site_keys(&self) -> Vec<String> {
        self.funcs
            .iter()
            .flat_map(|f| f.sites.iter().map(|s| s.key.clone()))
            .collect()
    }
}
