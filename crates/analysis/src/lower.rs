//! AST → executable-IR lowering.
//!
//! [`lower_ir`] flattens a type-checked [`Program`] into
//! [`IrProgram`] basic blocks, reproducing the CFG lowering's evaluation
//! order exactly: for a path `base->f1->…->fk`, one check site per arrow
//! in navigation order; for a store, the source expression first, then
//! the destination path with `is_store` on the final arrow; `if`
//! conditions before branches; `while` conditions in the loop head,
//! re-evaluated per iteration; call arguments left to right; binary
//! operands left before right.
//!
//! Because that is also the order [`crate::verdicts::mech_table`] walks
//! when it lowers the §4.3 selection onto the program text, the `k`-th
//! check site lowered within a function *is* the `k`-th verdict of that
//! function in the [`MechTable`] — lowering zips the two streams,
//! embeds each verdict's key and mechanism into the emitted [`IrSite`],
//! and returns an error rather than guess if the renderings ever
//! disagree. The IR interpreter thereby honors the live olden-select
//! verdicts without any name-based lookup at run time.

use crate::ast::{Expr, FuncDef, Program, Stmt};
use crate::cost::loop_keys;
use crate::ir::{
    BinOp, BlockId, Inst, IrBlock, IrField, IrFunc, IrProgram, IrSite, IrStruct, IrTy, Reg, Term,
    UnOp,
};
use crate::loops::{find_control_loops, LoopKind};
use crate::verdicts::{mech_table, MechTable, SiteVerdict};
use std::collections::HashMap;

/// Global field layout: the DSL treats field names as program-global
/// (affinities already resolve that way, see [`Program::affinity`]), so
/// each distinct name gets one word slot program-wide.
struct FieldMap {
    slots: HashMap<String, FieldInfo>,
}

#[derive(Clone)]
struct FieldInfo {
    word: usize,
    is_pointer: bool,
}

impl FieldMap {
    fn build(prog: &Program) -> FieldMap {
        let mut slots = HashMap::new();
        let mut next = 0usize;
        for s in &prog.structs {
            for f in &s.fields {
                slots.entry(f.name.clone()).or_insert_with(|| {
                    let info = FieldInfo {
                        word: next,
                        is_pointer: f.is_pointer,
                    };
                    next += 1;
                    info
                });
            }
        }
        FieldMap { slots }
    }

    /// Unknown field names (possible only in programs the typechecker
    /// rejects) fall back to slot 0 as an integer, keeping lowering
    /// total.
    fn info(&self, name: &str) -> FieldInfo {
        self.slots.get(name).cloned().unwrap_or(FieldInfo {
            word: 0,
            is_pointer: false,
        })
    }
}

fn lower_structs(prog: &Program, fields: &FieldMap) -> Vec<IrStruct> {
    let struct_idx: HashMap<&str, usize> = prog
        .structs
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.as_str(), i))
        .collect();
    prog.structs
        .iter()
        .map(|s| {
            let mut words = 1usize;
            let fs: Vec<IrField> = s
                .fields
                .iter()
                .map(|f| {
                    let info = fields.info(&f.name);
                    words = words.max(info.word + 1);
                    IrField {
                        name: f.name.clone(),
                        word: info.word,
                        is_pointer: f.is_pointer,
                        target: struct_idx.get(f.ty.as_str()).copied(),
                        affinity: f.affinity.unwrap_or(crate::DEFAULT_AFFINITY),
                    }
                })
                .collect();
            IrStruct {
                name: s.name.clone(),
                words,
                fields: fs,
            }
        })
        .collect()
}

/// Per-function lowering state.
struct FnLower<'a> {
    fields: &'a FieldMap,
    func_idx: &'a HashMap<&'a str, usize>,
    func: &'a FuncDef,
    env: HashMap<String, Reg>,
    nregs: usize,
    blocks: Vec<BlockBuf>,
    cur: BlockId,
    sites: Vec<IrSite>,
    /// This function's verdicts, in table order; `next_verdict` walks it.
    verdicts: Vec<&'a SiteVerdict>,
    next_verdict: usize,
    /// Global trip-key slots of this function's `while` loops, consumed
    /// in pre-order as lowering encounters them.
    while_slots: Vec<usize>,
    next_while: usize,
}

struct BlockBuf {
    insts: Vec<Inst>,
    term: Option<Term>,
    trip_slot: Option<usize>,
}

impl<'a> FnLower<'a> {
    fn fresh(&mut self) -> Reg {
        let r = self.nregs;
        self.nregs += 1;
        r
    }

    fn var(&mut self, name: &str) -> Reg {
        if let Some(&r) = self.env.get(name) {
            return r;
        }
        let r = self.fresh();
        self.env.insert(name.to_string(), r);
        r
    }

    fn emit(&mut self, inst: Inst) {
        self.blocks[self.cur].insts.push(inst);
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BlockBuf {
            insts: Vec::new(),
            term: None,
            trip_slot: None,
        });
        self.blocks.len() - 1
    }

    fn terminate(&mut self, term: Term) {
        if self.blocks[self.cur].term.is_none() {
            self.blocks[self.cur].term = Some(term);
        }
    }

    /// Claim the next verdict for a site and cross-check its rendering.
    fn site(
        &mut self,
        base: &str,
        prefix: &[String],
        field: &str,
        is_store: bool,
    ) -> Result<usize, String> {
        let v = self.verdicts.get(self.next_verdict).ok_or_else(|| {
            format!(
                "{}: lowering produced more check sites than the mech table has verdicts \
                 (at {base}->{field})",
                self.func.name
            )
        })?;
        self.next_verdict += 1;
        let mut rendered = String::from(base);
        for p in prefix {
            rendered.push_str("->");
            rendered.push_str(p);
        }
        rendered.push_str("->");
        rendered.push_str(field);
        if v.site != rendered || v.is_store != is_store {
            return Err(format!(
                "{}: site stream out of sync with mech table: lowered {rendered} \
                 (store={is_store}), table has {} (store={})",
                self.func.name, v.site, v.is_store
            ));
        }
        let info = self.fields.info(field);
        self.sites.push(IrSite {
            key: v.key(),
            mech: v.mech,
            field: info.word,
            loads_ptr: info.is_pointer,
            is_store,
        });
        Ok(self.sites.len() - 1)
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<Reg, String> {
        match e {
            Expr::Int(n) => {
                let dst = self.fresh();
                self.emit(Inst::ConstInt { dst, val: *n });
                Ok(dst)
            }
            Expr::Null => {
                let dst = self.fresh();
                self.emit(Inst::ConstNull { dst });
                Ok(dst)
            }
            Expr::Var(v) => Ok(self.var(v)),
            Expr::Path { base, fields, .. } => {
                let mut cur = self.var(base);
                for (i, f) in fields.iter().enumerate() {
                    let site = self.site(base, &fields[..i], f, false)?;
                    let dst = self.fresh();
                    self.emit(Inst::Load {
                        dst,
                        base: cur,
                        site,
                    });
                    cur = dst;
                }
                Ok(cur)
            }
            Expr::Call {
                func, args, future, ..
            } => {
                let arg_regs = args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                let dst = self.fresh();
                match self.func_idx.get(func.as_str()) {
                    Some(&fi) if *future => {
                        // A future in expression position must be claimed
                        // before its value can be used (typeck enforces
                        // assignment-then-touch; this keeps stray shapes
                        // total).
                        self.emit(Inst::FutureCall {
                            dst,
                            func: fi,
                            args: arg_regs,
                        });
                        self.emit(Inst::Touch { reg: dst });
                    }
                    Some(&fi) => self.emit(Inst::Call {
                        dst,
                        func: fi,
                        args: arg_regs,
                    }),
                    None => self.emit(Inst::ExternCall {
                        dst,
                        name: func.clone(),
                        args: arg_regs,
                    }),
                }
                Ok(dst)
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                let bop = BinOp::parse(op)
                    .ok_or_else(|| format!("{}: unknown binary op {op:?}", self.func.name))?;
                let dst = self.fresh();
                self.emit(Inst::Bin {
                    dst,
                    op: bop,
                    lhs: l,
                    rhs: r,
                });
                Ok(dst)
            }
            Expr::Unary { op, arg } => {
                let a = self.lower_expr(arg)?;
                let uop = match op.as_str() {
                    "-" => UnOp::Neg,
                    "!" => UnOp::Not,
                    other => return Err(format!("{}: unknown unary op {other:?}", self.func.name)),
                };
                let dst = self.fresh();
                self.emit(Inst::Un {
                    dst,
                    op: uop,
                    arg: a,
                });
                Ok(dst)
            }
        }
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), String> {
        for s in stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), String> {
        match s {
            Stmt::Assign { dst, src, .. } => {
                // `x = futurecall f(...)`: the variable holds the pending
                // future until `touch x` claims it.
                if let Expr::Call {
                    func,
                    args,
                    future: true,
                    ..
                } = src
                {
                    if let Some(&fi) = self.func_idx.get(func.as_str()) {
                        let arg_regs = args
                            .iter()
                            .map(|a| self.lower_expr(a))
                            .collect::<Result<Vec<_>, _>>()?;
                        let dreg = self.var(dst);
                        self.emit(Inst::FutureCall {
                            dst: dreg,
                            func: fi,
                            args: arg_regs,
                        });
                        return Ok(());
                    }
                }
                let r = self.lower_expr(src)?;
                let dreg = self.var(dst);
                self.emit(Inst::Copy { dst: dreg, src: r });
                Ok(())
            }
            Stmt::Store {
                base, fields, src, ..
            } => {
                let r = self.lower_expr(src)?;
                let mut cur = self.var(base);
                let last = fields.len() - 1;
                for (i, f) in fields.iter().enumerate() {
                    if i < last {
                        let site = self.site(base, &fields[..i], f, false)?;
                        let dst = self.fresh();
                        self.emit(Inst::Load {
                            dst,
                            base: cur,
                            site,
                        });
                        cur = dst;
                    } else {
                        let site = self.site(base, &fields[..i], f, true)?;
                        self.emit(Inst::Store {
                            base: cur,
                            src: r,
                            site,
                        });
                    }
                }
                Ok(())
            }
            Stmt::If { cond, then_, else_ } => {
                let c = self.lower_expr(cond)?;
                let then_b = self.new_block();
                let else_b = self.new_block();
                let merge = self.new_block();
                self.terminate(Term::Branch {
                    cond: c,
                    then_: then_b,
                    else_: else_b,
                });
                self.cur = then_b;
                self.lower_stmts(then_)?;
                self.terminate(Term::Jump(merge));
                self.cur = else_b;
                self.lower_stmts(else_)?;
                self.terminate(Term::Jump(merge));
                self.cur = merge;
                Ok(())
            }
            Stmt::While { cond, body } => {
                // Consume this loop's trip slot *before* descending, so
                // nested loops take later slots — matching
                // `find_control_loops`' pre-order discovery.
                let slot = self.while_slots.get(self.next_while).copied();
                self.next_while += 1;
                let head = self.new_block();
                self.terminate(Term::Jump(head));
                self.cur = head;
                let c = self.lower_expr(cond)?;
                let body_b = self.new_block();
                self.blocks[body_b].trip_slot = slot;
                let exit = self.new_block();
                // The condition may span several blocks (it cannot today:
                // conditions are expressions without control flow — but
                // terminate from wherever lowering ended up).
                self.terminate(Term::Branch {
                    cond: c,
                    then_: body_b,
                    else_: exit,
                });
                self.cur = body_b;
                self.lower_stmts(body)?;
                self.terminate(Term::Jump(head));
                self.cur = exit;
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                // `futurecall f(...);` for effect: spawn and never touch
                // (fire-and-forget), exactly what the DSL wrote.
                if let Expr::Call {
                    func,
                    args,
                    future: true,
                    ..
                } = e
                {
                    if let Some(&fi) = self.func_idx.get(func.as_str()) {
                        let arg_regs = args
                            .iter()
                            .map(|a| self.lower_expr(a))
                            .collect::<Result<Vec<_>, _>>()?;
                        let dst = self.fresh();
                        self.emit(Inst::FutureCall {
                            dst,
                            func: fi,
                            args: arg_regs,
                        });
                        return Ok(());
                    }
                }
                self.lower_expr(e)?;
                Ok(())
            }
            Stmt::Touch { var, .. } => {
                let r = self.var(var);
                self.emit(Inst::Touch { reg: r });
                Ok(())
            }
            Stmt::Return(e) => {
                let r = match e {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.terminate(Term::Ret(r));
                // Dead code after a return still lowers (and still
                // consumes verdicts — the mech-table walker visits it).
                self.cur = self.new_block();
                Ok(())
            }
        }
    }
}

fn lower_func(
    prog: &Program,
    fields: &FieldMap,
    func_idx: &HashMap<&str, usize>,
    func: &FuncDef,
    verdicts: Vec<&SiteVerdict>,
    rec_slot: Option<usize>,
    while_slots: Vec<usize>,
) -> Result<IrFunc, String> {
    let mut lw = FnLower {
        fields,
        func_idx,
        func,
        env: HashMap::new(),
        nregs: 0,
        blocks: Vec::new(),
        cur: 0,
        sites: Vec::new(),
        verdicts,
        next_verdict: 0,
        while_slots,
        next_while: 0,
    };
    lw.new_block();
    for p in &func.params {
        let r = lw.fresh();
        lw.env.insert(p.clone(), r);
    }
    lw.lower_stmts(&func.body)?;
    lw.terminate(Term::Ret(None));
    if lw.next_verdict != lw.verdicts.len() {
        return Err(format!(
            "{}: mech table has {} verdicts but lowering consumed {}",
            func.name,
            lw.verdicts.len(),
            lw.next_verdict
        ));
    }
    if lw.next_while != lw.while_slots.len() {
        return Err(format!(
            "{}: control-loop discovery found {} while loop(s) but lowering saw {}",
            func.name,
            lw.while_slots.len(),
            lw.next_while
        ));
    }
    let struct_idx: HashMap<&str, usize> = prog
        .structs
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.as_str(), i))
        .collect();
    let params = func
        .param_tys
        .iter()
        .map(|t| match struct_idx.get(t.name.as_str()) {
            Some(&si) if t.is_pointer => IrTy::Ptr(si),
            _ => IrTy::Int,
        })
        .collect();
    let returns_value = func.ret.name != "void" || func.ret.is_pointer;
    let blocks = lw
        .blocks
        .into_iter()
        .map(|b| IrBlock {
            insts: b.insts,
            term: b.term.unwrap_or(Term::Ret(None)),
            trip_slot: b.trip_slot,
        })
        .collect();
    Ok(IrFunc {
        name: func.name.clone(),
        params,
        returns_value,
        nregs: lw.nregs,
        blocks,
        sites: lw.sites,
        rec_slot,
    })
}

/// Lower a program against its live mechanism table. Fails (never
/// guesses) if the lowered site stream disagrees with the table — which
/// would mean the CFG walker and this lowering no longer share an
/// evaluation order.
pub fn lower_ir(prog: &Program, table: &MechTable) -> Result<IrProgram, String> {
    let fields = FieldMap::build(prog);
    let structs = lower_structs(prog, &fields);
    let func_idx: HashMap<&str, usize> = prog
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    let trip_keys = loop_keys(prog);
    let loops = find_control_loops(prog);

    let mut funcs = Vec::new();
    for f in &prog.funcs {
        let verdicts: Vec<&SiteVerdict> = table.sites.iter().filter(|v| v.func == f.name).collect();
        // This function's control loops, in discovery order: recursion
        // first (if directly recursive), then `while`s pre-order.
        let mut rec_slot = None;
        let mut while_slots = Vec::new();
        for (slot, l) in loops.iter().enumerate() {
            if l.func != f.name {
                continue;
            }
            match l.kind {
                LoopKind::Recursion => rec_slot = Some(slot),
                LoopKind::While { .. } => while_slots.push(slot),
            }
        }
        funcs.push(lower_func(
            prog,
            &fields,
            &func_idx,
            f,
            verdicts,
            rec_slot,
            while_slots,
        )?);
    }
    Ok(IrProgram {
        structs,
        funcs,
        trip_keys,
    })
}

/// Front door: parse, typecheck, select, and lower a source program.
/// Returns the parsed program, its mechanism table, and the executable
/// IR — or the first reason the program cannot be executed.
pub fn compile(src: &str) -> Result<(Program, MechTable, IrProgram), String> {
    let prog = crate::parse(src).map_err(|e| format!("parse error: {e}"))?;
    let diags = crate::typecheck(&prog);
    if let Some(d) = diags.first() {
        return Err(format!("type error: {}", d.one_line()));
    }
    let table = mech_table(&prog);
    let ir = lower_ir(&prog, &table)?;
    Ok((prog, table, ir))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_program;
    use crate::ir::Inst;

    /// The load-bearing invariant: for every generated program, the
    /// lowered site stream is byte-identical (in keys, order, and
    /// store-ness) to the mech table's verdicts — the IR executes under
    /// exactly the olden-select decisions.
    #[test]
    fn lowered_sites_match_mech_table_keys() {
        for seed in 0..300 {
            let prog = gen_program(seed);
            let table = mech_table(&prog);
            let ir = lower_ir(&prog, &table).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(ir.site_keys(), table.keys(), "seed {seed}");
        }
    }

    /// Trip keys are the cost model's loop keys, and every while body
    /// lowered got a slot.
    #[test]
    fn trip_slots_cover_all_control_loops() {
        for seed in 0..100 {
            let prog = gen_program(seed);
            let table = mech_table(&prog);
            let ir = lower_ir(&prog, &table).unwrap();
            assert_eq!(ir.trip_keys, crate::loop_keys(&prog), "seed {seed}");
            let mut used: Vec<usize> = ir
                .funcs
                .iter()
                .flat_map(|f| {
                    f.rec_slot
                        .into_iter()
                        .chain(f.blocks.iter().filter_map(|b| b.trip_slot))
                })
                .collect();
            used.sort_unstable();
            assert_eq!(
                used,
                (0..ir.trip_keys.len()).collect::<Vec<_>>(),
                "seed {seed}: every control loop owns exactly one trip slot"
            );
        }
    }

    /// Field slots are global: structs sharing a field name share its
    /// word, and struct footprints cover their largest slot.
    #[test]
    fn field_layout_is_global_and_covering() {
        let src = "struct a { int v; b *next; }\n\
                   struct b { int v; a *back; }\n\
                   int main(a *p) { return p->next->v; }\n";
        let (_, _, ir) = compile(src).unwrap();
        let a = &ir.structs[0];
        let b = &ir.structs[1];
        let slot = |s: &IrStruct, n: &str| s.fields.iter().find(|f| f.name == n).unwrap().word;
        assert_eq!(slot(a, "v"), slot(b, "v"));
        assert!(a.words > slot(a, "next"));
        assert!(b.words > slot(b, "back"));
        assert_eq!(ir.funcs[0].sites.len(), 2);
        assert!(ir.funcs[0].sites[0].loads_ptr);
        assert!(!ir.funcs[0].sites[1].loads_ptr);
    }

    /// A store lowers its source before the destination path, with
    /// `is_store` only on the final arrow — the CFG's order.
    #[test]
    fn store_lowers_source_then_destination() {
        let src = "struct n { n *next; int v; }\n\
                   void f(n *p) { p->next->v = p->v; }\n";
        let (_, table, ir) = compile(src).unwrap();
        let f = &ir.funcs[0];
        // Three sites: p->v (the source), p->next, p->next->v (store).
        assert_eq!(f.sites.len(), 3);
        assert!(!f.sites[0].is_store && !f.sites[1].is_store && f.sites[2].is_store);
        assert_eq!(ir.site_keys(), table.keys());
    }

    /// Fire-and-forget futures lower to an untouched `FutureCall`;
    /// assigned futures keep the handle in the variable's register until
    /// `touch`.
    #[test]
    fn future_shapes_lower_without_spurious_touch() {
        let src = "struct n { n *next; int v; }\n\
                   void leaf(n *p) { p->v = 1; }\n\
                   int main(n *p) {\n\
                       futurecall leaf(p);\n\
                       h = futurecall main(p->next);\n\
                       touch h;\n\
                       return h;\n\
                   }\n";
        let (_, _, ir) = compile(src).unwrap();
        let main = &ir.funcs[1];
        let touches = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Touch { .. }))
            .count();
        assert_eq!(touches, 1, "only the explicit touch lowers");
        assert!(main.rec_slot.is_some(), "main is directly recursive");
    }

    /// Dead code after `return` still consumes verdicts, because the
    /// mech-table walker visits it.
    #[test]
    fn dead_code_still_aligns_with_table() {
        let src = "struct n { n *next; int v; }\n\
                   int f(n *p) { return 0; x = p->v; return x; }\n";
        let (_, table, ir) = compile(src).unwrap();
        assert_eq!(ir.site_keys(), table.keys());
        assert_eq!(ir.site_count(), 1);
    }
}
