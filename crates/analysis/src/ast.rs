//! Abstract syntax for the restricted C subset of §2.
//!
//! The subset is exactly what the analysis consumes: structures with
//! (affinity-annotated) pointer fields, functions, assignments whose
//! right-hand sides may navigate pointer paths, conditionals, `while`
//! loops, (recursive) calls, and `futurecall`/`touch` annotations.
//! Programs may not take the address of stack objects, so every pointer
//! points into the heap — which is what makes the per-dereference
//! mechanism choice well-defined.

use crate::diag::Span;
use std::collections::HashMap;

/// A declared type annotation: a base type name (`int`, `void`, or a
/// struct name) plus pointer-ness. The parser records these from the
/// surface syntax; the typechecker ([`crate::typeck`]) resolves and
/// enforces them. The untyped analyses (racecheck/opt/select) ignore
/// them entirely.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeAnn {
    pub name: String,
    pub is_pointer: bool,
}

impl TypeAnn {
    pub fn int() -> TypeAnn {
        TypeAnn {
            name: "int".into(),
            is_pointer: false,
        }
    }

    pub fn void() -> TypeAnn {
        TypeAnn {
            name: "void".into(),
            is_pointer: false,
        }
    }

    pub fn ptr(name: impl Into<String>) -> TypeAnn {
        TypeAnn {
            name: name.into(),
            is_pointer: true,
        }
    }
}

/// A structure field.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDef {
    pub name: String,
    /// Declared base type name (`int` for scalars, the target struct
    /// name for pointers).
    pub ty: String,
    /// True for pointer fields (the only ones that carry affinities).
    pub is_pointer: bool,
    /// Path-affinity hint in [0, 1]; `None` means the 70 % default.
    pub affinity: Option<f64>,
}

/// A structure declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// The null pointer.
    Null,
    /// A variable use.
    Var(String),
    /// Pointer navigation: `base->f1->f2…` (at least one field).
    Path {
        base: String,
        fields: Vec<String>,
        span: Span,
    },
    /// A (possibly recursive) call; `future` marks `futurecall`.
    Call {
        func: String,
        args: Vec<Expr>,
        future: bool,
        span: Span,
    },
    /// A binary operation (arithmetic/comparison; the analysis only cares
    /// that it is not a pointer path).
    Binary {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Logical/unary operator application.
    Unary { op: String, arg: Box<Expr> },
}

impl Expr {
    /// If this expression is a pure pointer path (a variable or a
    /// `base->f…` navigation), return `(base, fields)`.
    pub fn as_path(&self) -> Option<(&str, &[String])> {
        match self {
            Expr::Var(v) => Some((v, &[])),
            Expr::Path { base, fields, .. } => Some((base, fields)),
            _ => None,
        }
    }

    /// Visit every sub-expression (including `self`).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Unary { arg, .. } => arg.walk(f),
            _ => {}
        }
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `x = expr;` (also covers declarations; the subset is untyped at
    /// the analysis level, pointer-ness is inferred from use).
    Assign { dst: String, src: Expr, span: Span },
    /// `lhs->f… = expr;` — a store through a pointer path.
    Store {
        base: String,
        fields: Vec<String>,
        src: Expr,
        span: Span,
    },
    /// `if (cond) { then } else { els }`.
    If {
        cond: Expr,
        then_: Vec<Stmt>,
        else_: Vec<Stmt>,
    },
    /// `while (cond) { body }` — an iterative control loop.
    While { cond: Expr, body: Vec<Stmt> },
    /// An expression evaluated for effect (typically a call).
    ExprStmt(Expr),
    /// `touch x;` — claim a future's value.
    Touch { var: String, span: Span },
    /// `return expr?;`
    Return(Option<Expr>),
}

impl Stmt {
    /// Visit every expression in this statement (not descending into
    /// nested statements).
    pub fn exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Stmt::Assign { src, .. } => src.walk(f),
            Stmt::Store { src, .. } => src.walk(f),
            Stmt::If { cond, .. } => cond.walk(f),
            Stmt::While { cond, .. } => cond.walk(f),
            Stmt::ExprStmt(e) => e.walk(f),
            Stmt::Return(Some(e)) => e.walk(f),
            Stmt::Touch { .. } | Stmt::Return(None) => {}
        }
    }

    /// Visit this statement and all nested statements, pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::If { then_, else_, .. } => {
                for s in then_.iter().chain(else_) {
                    s.walk(f);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }
}

/// Walk a statement list, visiting every statement pre-order.
pub fn walk_stmts(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in stmts {
        s.walk(f);
    }
}

/// Collect every call expression in a statement list (including those in
/// nested statements), with its nesting relationship ignored.
pub fn collect_calls(stmts: &[Stmt]) -> Vec<Expr> {
    let mut out = Vec::new();
    walk_stmts(stmts, &mut |s| {
        s.exprs(&mut |e| {
            if matches!(e, Expr::Call { .. }) {
                out.push(e.clone());
            }
        });
    });
    out
}

/// True if any expression in the statements (at any nesting depth) is a
/// `futurecall`.
pub fn contains_future(stmts: &[Stmt]) -> bool {
    let mut found = false;
    walk_stmts(stmts, &mut |s| {
        s.exprs(&mut |e| {
            if let Expr::Call { future: true, .. } = e {
                found = true;
            }
        });
    });
    found
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    pub name: String,
    pub params: Vec<String>,
    /// Declared parameter types, parallel to `params`.
    pub param_tys: Vec<TypeAnn>,
    /// Declared return type.
    pub ret: TypeAnn,
    pub body: Vec<Stmt>,
}

/// A whole program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pub structs: Vec<StructDef>,
    pub funcs: Vec<FuncDef>,
}

impl Program {
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Affinity of `field`, searching all structures (field names are
    /// treated as global, as in the paper's examples); unannotated or
    /// unknown fields get the default.
    pub fn affinity(&self, field: &str) -> f64 {
        for s in &self.structs {
            for fd in &s.fields {
                if fd.name == field {
                    return fd.affinity.unwrap_or(crate::DEFAULT_AFFINITY);
                }
            }
        }
        crate::DEFAULT_AFFINITY
    }

    /// Affinity of a multi-field path: the product of per-field
    /// affinities (§4.2, final case).
    pub fn path_affinity(&self, fields: &[String]) -> f64 {
        fields.iter().map(|f| self.affinity(f)).product()
    }

    /// A map from struct name to its definition.
    pub fn struct_map(&self) -> HashMap<&str, &StructDef> {
        self.structs.iter().map(|s| (s.name.as_str(), s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog_with_tree() -> Program {
        Program {
            structs: vec![StructDef {
                name: "tree".into(),
                fields: vec![
                    FieldDef {
                        name: "left".into(),
                        ty: "tree".into(),
                        is_pointer: true,
                        affinity: Some(0.9),
                    },
                    FieldDef {
                        name: "right".into(),
                        ty: "tree".into(),
                        is_pointer: true,
                        affinity: Some(0.7),
                    },
                    FieldDef {
                        name: "val".into(),
                        ty: "int".into(),
                        is_pointer: false,
                        affinity: None,
                    },
                ],
            }],
            funcs: vec![],
        }
    }

    #[test]
    fn affinity_lookup_and_default() {
        let p = prog_with_tree();
        assert_eq!(p.affinity("left"), 0.9);
        assert_eq!(p.affinity("right"), 0.7);
        assert_eq!(p.affinity("val"), crate::DEFAULT_AFFINITY);
        assert_eq!(p.affinity("nonexistent"), crate::DEFAULT_AFFINITY);
    }

    #[test]
    fn path_affinity_multiplies() {
        let p = prog_with_tree();
        let path = vec!["right".to_string(), "left".to_string()];
        assert!((p.path_affinity(&path) - 0.63).abs() < 1e-12);
        assert_eq!(p.path_affinity(&[]), 1.0);
    }

    #[test]
    fn as_path_classifies() {
        let v = Expr::Var("s".into());
        assert_eq!(v.as_path(), Some(("s", &[][..])));
        let p = Expr::Path {
            base: "s".into(),
            fields: vec!["left".into()],
            span: Span::DUMMY,
        };
        let (b, f) = p.as_path().unwrap();
        assert_eq!(b, "s");
        assert_eq!(f.len(), 1);
        assert!(Expr::Int(3).as_path().is_none());
    }

    #[test]
    fn contains_future_finds_nested() {
        let body = vec![Stmt::While {
            cond: Expr::Var("l".into()),
            body: vec![Stmt::ExprStmt(Expr::Call {
                func: "Traverse".into(),
                args: vec![Expr::Var("t".into())],
                future: true,
                span: Span::DUMMY,
            })],
        }];
        assert!(contains_future(&body));
        let plain = vec![Stmt::Return(None)];
        assert!(!contains_future(&plain));
    }

    #[test]
    fn collect_calls_descends_into_exprs() {
        let body = vec![Stmt::Return(Some(Expr::Binary {
            op: "+".into(),
            lhs: Box::new(Expr::Call {
                func: "f".into(),
                args: vec![],
                future: false,
                span: Span::DUMMY,
            }),
            rhs: Box::new(Expr::Call {
                func: "g".into(),
                args: vec![],
                future: false,
                span: Span::DUMMY,
            }),
        }))];
        assert_eq!(collect_calls(&body).len(), 2);
    }
}
