//! Control-loop discovery (§4.2).
//!
//! A *control loop* is either an iterative `while` loop or the set of
//! direct recursive calls of a function. Loops nest: a `while` inside a
//! function body nests inside the function's recursion loop (if the
//! function is recursive) and inside enclosing `while` loops. As in the
//! paper's prototype, the analysis is intraprocedural plus direct
//! recursion — loops spanning mutual recursion are not modelled (§4.2).

use crate::ast::{contains_future, Expr, FuncDef, Program, Stmt};

/// Stable identifier of a control loop within a [`crate::Program`]'s
/// analysis results. Parents always have smaller ids than their children.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LoopId(pub usize);

/// What kind of control loop.
#[derive(Clone, Debug, PartialEq)]
pub enum LoopKind {
    /// An iterative `while` loop; the payload is a human-readable
    /// description of its condition for reporting.
    While { cond: String },
    /// The set of direct recursive calls of `func`.
    Recursion,
}

/// One control loop, with everything later passes need.
#[derive(Clone, Debug)]
pub struct ControlLoop {
    pub id: LoopId,
    pub func: String,
    pub kind: LoopKind,
    /// Loop body: the `while` body, or the whole function body for a
    /// recursion loop.
    pub body: Vec<Stmt>,
    /// Innermost enclosing control loop, if any.
    pub parent: Option<LoopId>,
    /// Whether the loop is parallelizable — the Olden compiler "checks
    /// for the presence of futures" (§4.3).
    pub parallel: bool,
    /// Function parameters (used by update-matrix computation for
    /// recursion loops).
    pub params: Vec<String>,
}

fn cond_string(e: &Expr) -> String {
    match e {
        Expr::Var(v) => v.clone(),
        Expr::Path { base, fields, .. } => {
            let mut s = base.clone();
            for f in fields {
                s.push_str("->");
                s.push_str(f);
            }
            s
        }
        Expr::Binary { op, lhs, rhs } => {
            format!("{} {} {}", cond_string(lhs), op, cond_string(rhs))
        }
        Expr::Unary { op, arg } => format!("{}{}", op, cond_string(arg)),
        Expr::Null => "null".into(),
        Expr::Int(n) => n.to_string(),
        Expr::Call { func, .. } => format!("{func}(…)"),
    }
}

/// True if `func`'s body contains a direct call to itself.
pub fn is_directly_recursive(func: &FuncDef) -> bool {
    let mut found = false;
    crate::ast::walk_stmts(&func.body, &mut |s| {
        s.exprs(&mut |e| {
            if let Expr::Call { func: callee, .. } = e {
                if *callee == func.name {
                    found = true;
                }
            }
        });
    });
    found
}

/// Discover every control loop in the program, parents before children.
pub fn find_control_loops(prog: &Program) -> Vec<ControlLoop> {
    let mut loops = Vec::new();
    for f in &prog.funcs {
        let rec_parent = if is_directly_recursive(f) {
            let id = LoopId(loops.len());
            loops.push(ControlLoop {
                id,
                func: f.name.clone(),
                kind: LoopKind::Recursion,
                body: f.body.clone(),
                parent: None,
                parallel: contains_future(&f.body),
                params: f.params.clone(),
            });
            Some(id)
        } else {
            None
        };
        collect_whiles(f, &f.body, rec_parent, &mut loops);
    }
    loops
}

fn collect_whiles(f: &FuncDef, stmts: &[Stmt], parent: Option<LoopId>, out: &mut Vec<ControlLoop>) {
    for s in stmts {
        match s {
            Stmt::While { cond, body } => {
                let id = LoopId(out.len());
                out.push(ControlLoop {
                    id,
                    func: f.name.clone(),
                    kind: LoopKind::While {
                        cond: cond_string(cond),
                    },
                    body: body.clone(),
                    parent,
                    parallel: contains_future(body),
                    params: f.params.clone(),
                });
                collect_whiles(f, body, Some(id), out);
            }
            Stmt::If { then_, else_, .. } => {
                collect_whiles(f, then_, parent, out);
                collect_whiles(f, else_, parent, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn finds_while_loops_with_nesting() {
        let p = parse(
            r#"
            void f(node *a) {
                while (a) {
                    node *b = a->inner;
                    while (b) { b = b->next; }
                    a = a->next;
                }
            }
            "#,
        )
        .unwrap();
        let loops = find_control_loops(&p);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].parent, None);
        assert_eq!(loops[1].parent, Some(loops[0].id));
        assert!(matches!(loops[0].kind, LoopKind::While { .. }));
    }

    #[test]
    fn recursion_forms_a_loop_enclosing_whiles() {
        let p = parse(
            r#"
            void T(tree *t) {
                if (t == null) { return; }
                list *l = t->items;
                while (l) { l = l->next; }
                T(t->left);
                T(t->right);
            }
            "#,
        )
        .unwrap();
        let loops = find_control_loops(&p);
        assert_eq!(loops.len(), 2);
        assert!(matches!(loops[0].kind, LoopKind::Recursion));
        assert_eq!(loops[1].parent, Some(loops[0].id));
    }

    #[test]
    fn parallel_flag_from_futures() {
        let p = parse(
            r#"
            void f(list *l, tree *t) {
                while (l) { futurecall Go(t); l = l->next; }
            }
            void g(list *l) {
                while (l) { l = l->next; }
            }
            "#,
        )
        .unwrap();
        let loops = find_control_loops(&p);
        assert!(loops[0].parallel);
        assert!(!loops[1].parallel);
    }

    #[test]
    fn nonrecursive_function_has_no_recursion_loop() {
        let p = parse("int f(int x) { return g(x); } int g(int x) { return x; }").unwrap();
        assert!(find_control_loops(&p).is_empty());
    }

    #[test]
    fn whiles_inside_if_branches_found() {
        let p = parse(
            r#"
            void f(node *a, int c) {
                if (c) { while (a) { a = a->next; } }
                else { while (a) { a = a->prev; } }
            }
            "#,
        )
        .unwrap();
        assert_eq!(find_control_loops(&p).len(), 2);
    }
}
