//! A small recursive-descent parser for the restricted C subset.
//!
//! The surface syntax is C-like; the Olden-specific extensions are
//! `futurecall f(…)` and `touch x;` (paper §2) and path-affinity
//! annotations on pointer fields (§4.1), written as a percentage after
//! `@`:
//!
//! ```text
//! struct tree { tree *left @ 90; tree *right @ 70; int val; };
//!
//! int TreeAdd(tree *t) {
//!     if (t == null) { return 0; }
//!     else { return TreeAdd(t->left) + TreeAdd(t->right) + t->val; }
//! }
//! ```
//!
//! Declarations (`tree *t = e;` / `int x = e;`) are accepted and lowered
//! to plain assignments — the analysis is untyped and infers pointer-ness
//! from use.

use crate::ast::{Expr, FieldDef, FuncDef, Program, Stmt, StructDef, TypeAnn};
use crate::diag::Span;

/// A parse failure, with a human-readable message, the offending token
/// text, and its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub near: String,
    /// 1-based line/column of the offending token.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at {}: {} (near `{}`)",
            self.span, self.message, self.near
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Sym(&'static str),
    Eof,
}

impl Tok {
    fn show(&self) -> String {
        match self {
            Tok::Ident(s) => s.clone(),
            Tok::Num(n) => n.to_string(),
            Tok::Sym(s) => s.to_string(),
            Tok::Eof => "<eof>".into(),
        }
    }
}

/// A token plus the source position of its first character.
#[derive(Clone, Debug, PartialEq)]
struct STok {
    tok: Tok,
    span: Span,
}

/// Character cursor that tracks 1-based line/column as it advances.
struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Cursor {
        Cursor {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn advance(&mut self) {
        if let Some(c) = self.peek() {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.i += 1;
        }
    }
}

fn lex(src: &str) -> Result<Vec<STok>, ParseError> {
    let mut toks = Vec::new();
    let mut cur = Cursor::new(src);
    while let Some(c) = cur.peek() {
        if c.is_whitespace() {
            cur.advance();
            continue;
        }
        // Comments: // to end of line and /* ... */.
        if c == '/' && cur.peek2() == Some('/') {
            while cur.peek().is_some_and(|c| c != '\n') {
                cur.advance();
            }
            continue;
        }
        if c == '/' && cur.peek2() == Some('*') {
            cur.advance();
            cur.advance();
            while cur.peek().is_some() && !(cur.peek() == Some('*') && cur.peek2() == Some('/')) {
                cur.advance();
            }
            cur.advance();
            cur.advance();
            continue;
        }
        let span = cur.span();
        if c.is_ascii_alphabetic() || c == '_' {
            let mut text = String::new();
            while cur
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                text.push(cur.peek().unwrap());
                cur.advance();
            }
            toks.push(STok {
                tok: Tok::Ident(text),
                span,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut text = String::new();
            while cur.peek().is_some_and(|c| c.is_ascii_digit()) {
                text.push(cur.peek().unwrap());
                cur.advance();
            }
            let n = text.parse::<i64>().map_err(|_| ParseError {
                message: "integer literal out of range".into(),
                near: text.clone(),
                span,
            })?;
            toks.push(STok {
                tok: Tok::Num(n),
                span,
            });
            continue;
        }
        // Multi-character symbols first.
        let sym2 = match (c, cur.peek2()) {
            ('-', Some('>')) => Some("->"),
            ('=', Some('=')) => Some("=="),
            ('!', Some('=')) => Some("!="),
            ('<', Some('=')) => Some("<="),
            ('>', Some('=')) => Some(">="),
            ('&', Some('&')) => Some("&&"),
            ('|', Some('|')) => Some("||"),
            _ => None,
        };
        if let Some(s) = sym2 {
            toks.push(STok {
                tok: Tok::Sym(s),
                span,
            });
            cur.advance();
            cur.advance();
            continue;
        }
        let sym1 = match c {
            '{' => "{",
            '}' => "}",
            '(' => "(",
            ')' => ")",
            ';' => ";",
            ',' => ",",
            '@' => "@",
            '=' => "=",
            '<' => "<",
            '>' => ">",
            '+' => "+",
            '-' => "-",
            '*' => "*",
            '/' => "/",
            '%' => "%",
            '!' => "!",
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character `{c}`"),
                    near: c.to_string(),
                    span,
                })
            }
        };
        toks.push(STok {
            tok: Tok::Sym(sym1),
            span,
        });
        cur.advance();
    }
    toks.push(STok {
        tok: Tok::Eof,
        span: cur.span(),
    });
    Ok(toks)
}

struct Parser {
    toks: Vec<STok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn peek3(&self) -> &Tok {
        &self.toks[(self.pos + 2).min(self.toks.len() - 1)].tok
    }

    /// Source position of the current token.
    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            near: self.peek().show(),
            span: self.span(),
        })
    }

    fn eat_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Sym(x) if *x == s) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{s}`"))
        }
    }

    fn at_sym(&self, s: &str) -> bool {
        matches!(self.peek(), Tok::Sym(x) if *x == s)
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(x) if x == kw)
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        let span = self.span();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            t => Err(ParseError {
                message: "expected identifier".into(),
                near: t.show(),
                span,
            }),
        }
    }

    // ----- declarations ------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut p = Program::default();
        while !matches!(self.peek(), Tok::Eof) {
            if self.at_kw("struct") && matches!(self.peek3(), Tok::Sym("{")) {
                p.structs.push(self.struct_def()?);
            } else {
                p.funcs.push(self.func_def()?);
            }
        }
        Ok(p)
    }

    fn struct_def(&mut self) -> Result<StructDef, ParseError> {
        self.bump(); // struct
        let name = self.eat_ident()?;
        self.eat_sym("{")?;
        let mut fields = Vec::new();
        while !self.at_sym("}") {
            // `type` is one or two identifiers (e.g. `struct tree` is not
            // supported inside fields — use the bare struct name).
            let ty = self.eat_ident()?;
            let mut is_pointer = false;
            while self.at_sym("*") {
                self.bump();
                is_pointer = true;
            }
            let fname = self.eat_ident()?;
            let mut affinity = None;
            if self.at_sym("@") {
                self.bump();
                let span = self.span();
                match self.bump() {
                    Tok::Num(n) if (0..=100).contains(&n) => {
                        affinity = Some(n as f64 / 100.0);
                    }
                    t => {
                        return Err(ParseError {
                            message: "affinity must be an integer percentage 0..=100".into(),
                            near: t.show(),
                            span,
                        })
                    }
                }
            }
            if !is_pointer && affinity.is_some() {
                return self.err("affinity annotation on a non-pointer field");
            }
            self.eat_sym(";")?;
            fields.push(FieldDef {
                name: fname,
                ty,
                is_pointer,
                affinity,
            });
        }
        self.eat_sym("}")?;
        if self.at_sym(";") {
            self.bump();
        }
        Ok(StructDef { name, fields })
    }

    fn func_def(&mut self) -> Result<FuncDef, ParseError> {
        let ret_name = self.eat_ident()?;
        let mut ret = TypeAnn {
            name: ret_name,
            is_pointer: false,
        };
        while self.at_sym("*") {
            self.bump();
            ret.is_pointer = true;
        }
        let name = self.eat_ident()?;
        self.eat_sym("(")?;
        let mut params = Vec::new();
        let mut param_tys = Vec::new();
        if !self.at_sym(")") {
            loop {
                let ty_name = self.eat_ident()?;
                let mut ann = TypeAnn {
                    name: ty_name,
                    is_pointer: false,
                };
                while self.at_sym("*") {
                    self.bump();
                    ann.is_pointer = true;
                }
                params.push(self.eat_ident()?);
                param_tys.push(ann);
                if self.at_sym(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_sym(")")?;
        let body = self.block()?;
        Ok(FuncDef {
            name,
            params,
            param_tys,
            ret,
            body,
        })
    }

    // ----- statements ---------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.at_sym("{") {
            self.bump();
            let mut stmts = Vec::new();
            while !self.at_sym("}") {
                stmts.push(self.stmt()?);
            }
            self.bump();
            Ok(stmts)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.at_kw("if") {
            self.bump();
            self.eat_sym("(")?;
            let cond = self.expr()?;
            self.eat_sym(")")?;
            let then_ = self.block()?;
            let else_ = if self.at_kw("else") {
                self.bump();
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then_, else_ });
        }
        if self.at_kw("while") {
            self.bump();
            self.eat_sym("(")?;
            let cond = self.expr()?;
            self.eat_sym(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.at_kw("return") {
            self.bump();
            let e = if self.at_sym(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.eat_sym(";")?;
            return Ok(Stmt::Return(e));
        }
        if self.at_kw("touch") {
            let span = self.span();
            self.bump();
            let v = self.eat_ident()?;
            self.eat_sym(";")?;
            return Ok(Stmt::Touch { var: v, span });
        }
        // Declaration: IDENT '*'+ IDENT ... or IDENT IDENT ...
        if let (Tok::Ident(first), Tok::Sym("*"), Tok::Ident(_)) =
            (self.peek(), self.peek2(), self.peek3())
        {
            if first != "futurecall" {
                return self.decl_stmt();
            }
        }
        if let (Tok::Ident(first), Tok::Ident(_)) = (self.peek(), self.peek2()) {
            if first != "futurecall" && first != "touch" {
                return self.decl_stmt();
            }
        }
        // Assignment / store: lookahead for `=` after a path.
        if matches!(self.peek(), Tok::Ident(_)) {
            let save = self.pos;
            let span = self.span();
            let base = self.eat_ident()?;
            let mut fields = Vec::new();
            while self.at_sym("->") {
                self.bump();
                fields.push(self.eat_ident()?);
            }
            if self.at_sym("=") {
                self.bump();
                let src = self.expr()?;
                self.eat_sym(";")?;
                return if fields.is_empty() {
                    Ok(Stmt::Assign {
                        dst: base,
                        src,
                        span,
                    })
                } else {
                    Ok(Stmt::Store {
                        base,
                        fields,
                        src,
                        span,
                    })
                };
            }
            self.pos = save; // not an assignment: an expression statement
        }
        let e = self.expr()?;
        self.eat_sym(";")?;
        Ok(Stmt::ExprStmt(e))
    }

    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        let _ty = self.eat_ident()?;
        while self.at_sym("*") {
            self.bump();
        }
        let name = self.eat_ident()?;
        if self.at_sym("=") {
            self.bump();
            let src = self.expr()?;
            self.eat_sym(";")?;
            Ok(Stmt::Assign {
                dst: name,
                src,
                span,
            })
        } else {
            self.eat_sym(";")?;
            // Uninitialized declaration: model as assignment from null.
            Ok(Stmt::Assign {
                dst: name,
                src: Expr::Null,
                span,
            })
        }
    }

    // ----- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Tok::Sym(s) = self.peek() {
            let (op, prec) = match *s {
                "||" => ("||", 1),
                "&&" => ("&&", 2),
                "==" | "!=" => (*s, 3),
                "<" | ">" | "<=" | ">=" => (*s, 4),
                "+" | "-" => (*s, 5),
                "*" | "/" | "%" => (*s, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary {
                op: op.to_string(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.at_sym("!") || self.at_sym("-") {
            let op = match self.bump() {
                Tok::Sym(s) => s.to_string(),
                _ => unreachable!(),
            };
            let arg = self.unary()?;
            return Ok(Expr::Unary {
                op,
                arg: Box::new(arg),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            Tok::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.eat_sym(")")?;
                Ok(e)
            }
            Tok::Ident(id) if id == "null" || id == "NULL" => {
                self.bump();
                Ok(Expr::Null)
            }
            Tok::Ident(id) if id == "futurecall" => {
                self.bump();
                let func = self.eat_ident()?;
                let args = self.call_args()?;
                Ok(Expr::Call {
                    func,
                    args,
                    future: true,
                    span,
                })
            }
            Tok::Ident(id) => {
                self.bump();
                if self.at_sym("(") {
                    let args = self.call_args()?;
                    return Ok(Expr::Call {
                        func: id,
                        args,
                        future: false,
                        span,
                    });
                }
                let mut fields = Vec::new();
                while self.at_sym("->") {
                    self.bump();
                    fields.push(self.eat_ident()?);
                }
                if fields.is_empty() {
                    Ok(Expr::Var(id))
                } else {
                    Ok(Expr::Path {
                        base: id,
                        fields,
                        span,
                    })
                }
            }
            t => Err(ParseError {
                message: "expected expression".into(),
                near: t.show(),
                span,
            }),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.eat_sym("(")?;
        let mut args = Vec::new();
        if !self.at_sym(")") {
            loop {
                args.push(self.expr()?);
                if self.at_sym(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_sym(")")?;
        Ok(args)
    }
}

/// Parse a whole program from DSL source.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_struct_with_affinities() {
        let p = parse("struct tree { tree *left @ 90; tree *right @ 70; int val; };").unwrap();
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.fields[0].affinity, Some(0.9));
        assert_eq!(s.fields[1].affinity, Some(0.7));
        assert_eq!(s.fields[2].affinity, None);
        assert!(!s.fields[2].is_pointer);
    }

    #[test]
    fn parses_figure3_loop() {
        let p = parse(
            r#"
            struct node { node *left @ 90; node *right @ 70; };
            void f(node *s, node *t, node *u) {
                while (s) {
                    s = s->left;
                    t = t->right->left;
                    u = s->right;
                }
            }
            "#,
        )
        .unwrap();
        let f = p.func("f").unwrap();
        assert_eq!(f.params, vec!["s", "t", "u"]);
        match &f.body[0] {
            Stmt::While { body, .. } => {
                assert_eq!(body.len(), 3);
                assert!(
                    matches!(&body[1], Stmt::Assign { dst, src: Expr::Path { base, fields, .. }, .. }
                    if dst == "t" && base == "t" && fields == &vec!["right".to_string(), "left".to_string()])
                );
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure4_treeadd() {
        let p = parse(
            r#"
            struct tree { tree *left @ 90; tree *right @ 70; int val; };
            int TreeAdd(tree *t) {
                if (t == null) { return 0; }
                else { return TreeAdd(t->left) + TreeAdd(t->right) + t->val; }
            }
            "#,
        )
        .unwrap();
        let f = p.func("TreeAdd").unwrap();
        let calls = crate::ast::collect_calls(&f.body);
        assert_eq!(calls.len(), 2);
    }

    #[test]
    fn parses_futurecall_and_touch() {
        let p = parse(
            r#"
            struct list { list *next; tree *item; };
            struct tree { tree *left; tree *right; };
            void WalkAndTraverse(list *l, tree *t) {
                while (l != null) {
                    futurecall Traverse(t);
                    l = l->next;
                }
            }
            void g(tree *t) {
                int h = futurecall Work(t);
                touch h;
            }
            "#,
        )
        .unwrap();
        let f = p.func("WalkAndTraverse").unwrap();
        assert!(crate::ast::contains_future(&f.body));
        let g = p.func("g").unwrap();
        assert!(matches!(&g.body[1], Stmt::Touch { var, .. } if var == "h"));
    }

    #[test]
    fn parses_store_through_path() {
        let p = parse("void f(node *n) { n->left->val = 3; }").unwrap();
        match &p.func("f").unwrap().body[0] {
            Stmt::Store { base, fields, .. } => {
                assert_eq!(base, "n");
                assert_eq!(fields, &vec!["left".to_string(), "val".to_string()]);
            }
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let p = parse("int f() { return 1 + 2 * 3; }").unwrap();
        match &p.func("f").unwrap().body[0] {
            Stmt::Return(Some(Expr::Binary { op, rhs, .. })) => {
                assert_eq!(op, "+");
                assert!(matches!(&**rhs, Expr::Binary { op, .. } if op == "*"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("struct {").is_err());
        assert!(parse("void f() { return $; }").is_err());
        assert!(
            parse("struct s { int x @ 90; };").is_err(),
            "affinity on non-pointer"
        );
        assert!(
            parse("struct s { node *p @ 150; };").is_err(),
            "affinity > 100"
        );
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse(
            "// leading\nstruct s { /* inner */ s *n @ 50; };\nvoid f(s *x) { x = x->n; // trail\n }",
        )
        .unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn uninitialized_decl_becomes_null_assign() {
        let p = parse("void f() { tree *t; }").unwrap();
        assert!(matches!(
            &p.func("f").unwrap().body[0],
            Stmt::Assign { dst, src: Expr::Null, .. } if dst == "t"
        ));
    }

    #[test]
    fn spans_point_at_source() {
        // Line 1 is empty (leading newline), so everything is on lines 2-4.
        let p = parse("\nstruct s { s *n; };\nvoid f(s *x) {\n  x = x->n;\n}").unwrap();
        match &p.func("f").unwrap().body[0] {
            Stmt::Assign { src, span, .. } => {
                assert_eq!(*span, crate::diag::Span::new(4, 3));
                match src {
                    Expr::Path { span, .. } => assert_eq!(*span, crate::diag::Span::new(4, 7)),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_error_carries_line_and_col() {
        let err = parse("void f() {\n  return $;\n}").unwrap_err();
        assert_eq!(err.span, crate::diag::Span::new(2, 10));
        assert!(err.to_string().contains("2:10"), "{err}");
    }

    /// Truncated input fails cleanly at the `<eof>` token instead of
    /// panicking or looping — the parser's position clamp keeps `bump`
    /// total at end of stream.
    #[test]
    fn truncated_input_fails_at_eof() {
        for src in [
            "struct tree {",
            "struct tree { tree *left",
            "int f(tree *t) {",
            "int f(tree *t) { return t->",
            "int f(tree *t) { if (t ==",
        ] {
            let err = parse(src).unwrap_err();
            assert_eq!(err.near, "<eof>", "{src:?}: {err}");
            assert!(err.span.is_real(), "{src:?}: {err}");
        }
    }

    /// A stray token mid-statement is reported at its own position with
    /// the offending text in `near`.
    #[test]
    fn stray_token_is_located() {
        let err = parse("int f(tree *t) {\n  return 1 + ;\n}").unwrap_err();
        assert_eq!(err.near, ";");
        assert_eq!(err.span, crate::diag::Span::new(2, 14));
        let err = parse("int f(tree *t) { touch 3; }").unwrap_err();
        assert_eq!(err.near, "3");
        assert!(err.message.contains("identifier"), "{err}");
    }

    /// An unknown token inside a field declaration points at the field,
    /// not at end of struct.
    #[test]
    fn bad_field_declaration_is_located() {
        let err = parse("struct s {\n  tree *left @@ 90;\n};").unwrap_err();
        assert_eq!(err.span.line, 2, "{err}");
        let err = parse("struct s { 3 x; };").unwrap_err();
        assert_eq!(err.near, "3");
    }

    #[test]
    fn futurecall_and_touch_spans() {
        let src = "void g(tree *t) {\n  int h = futurecall Work(t);\n  touch h;\n}";
        let p = parse(src).unwrap();
        let g = p.func("g").unwrap();
        match &g.body[0] {
            Stmt::Assign {
                src: Expr::Call { future, span, .. },
                ..
            } => {
                assert!(future);
                assert_eq!(*span, crate::diag::Span::new(2, 11));
            }
            other => panic!("{other:?}"),
        }
        match &g.body[1] {
            Stmt::Touch { span, .. } => assert_eq!(*span, crate::diag::Span::new(3, 3)),
            other => panic!("{other:?}"),
        }
    }
}
