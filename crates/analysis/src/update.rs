//! Update matrices (§4.2): how pointer variables move through a recursive
//! structure per control-loop iteration.
//!
//! The entry at `(s, t)` is the path-affinity of the update if `s`'s value
//! at the end of an iteration is `t`'s value at the start dereferenced
//! through some field path (`s' = t->F…`); blank otherwise. Diagonal
//! entries identify induction variables. The pass is a forward symbolic
//! evaluation of one iteration:
//!
//! * assignments through pointer paths compose (`s = s->left; u = s->right`
//!   gives `u ← s` along `left->right`, affinity 0.9 × 0.7 = 0.63 — the
//!   `u` row of Figure 3);
//! * at a join the two branches' updates are **averaged** if both assign
//!   the variable along the same base, and **omitted** if only one does
//!   (§4.2 case 1);
//! * for a recursion loop, each recursive call site contributes the
//!   affinity of its argument path, and multiple sites combine as
//!   `1 − Π(1 − aᵢ)` — the probability at least one child is local
//!   (§4.2 case 2, Figure 4's 97 %);
//! * a multi-field path multiplies per-field affinities (§4.2 case 3).
//!
//! Exactness is not required: "errors in the update matrices will not
//! affect program correctness" — they only steer the cost heuristic.

use crate::ast::{Expr, Program, Stmt};
use crate::loops::{ControlLoop, LoopKind};
use std::collections::HashMap;

/// The update matrix of one control loop: `(s, t) → affinity`, stored as
/// row maps so lookups borrow instead of building owned key tuples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UpdateMatrix {
    rows: HashMap<String, HashMap<String, f64>>,
}

impl UpdateMatrix {
    /// Affinity of the `(s, t)` entry, if present.
    pub fn get(&self, s: &str, t: &str) -> Option<f64> {
        self.rows.get(s).and_then(|r| r.get(t)).copied()
    }

    /// Record the `(s, t)` entry.
    pub fn insert(&mut self, s: String, t: String, affinity: f64) {
        self.rows.entry(s).or_default().insert(t, affinity);
    }

    /// Variables updated by themselves — the induction variables.
    pub fn induction_vars(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = self
            .rows
            .iter()
            .filter_map(|(s, r)| r.get(s).map(|&a| (s.as_str(), a)))
            .collect();
        // Deterministic order: strongest affinity first, then name.
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(b.0)));
        v
    }

    /// Every variable appearing as an updated (row) variable.
    pub fn row_vars(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.rows.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// True if `var` has any update entry (used by the bottleneck pass to
    /// ask "is this variable updated in the parent loop?").
    pub fn updates(&self, var: &str) -> bool {
        self.rows.contains_key(var)
    }

    /// Locality of `s`'s fresh value each iteration: the diagonal entry
    /// if `s` is an induction variable, else the strongest update in its
    /// row (deterministic: highest affinity, ties by column name).
    pub fn row_affinity(&self, s: &str) -> Option<f64> {
        let r = self.rows.get(s)?;
        if let Some(&a) = r.get(s) {
            return Some(a);
        }
        r.iter()
            .max_by(|(ta, aa), (tb, ab)| aa.partial_cmp(ab).unwrap().then(tb.cmp(ta)))
            .map(|(_, &a)| a)
    }
}

/// Symbolic value of a variable during the one-iteration evaluation:
/// a path from an iteration-entry variable, or unknown.
#[derive(Clone, Debug, PartialEq)]
enum Sym {
    /// `base`'s iteration-entry value followed through a path with the
    /// given accumulated affinity. `assigned` distinguishes a variable
    /// actually written this iteration from the identity binding.
    Path {
        base: String,
        affinity: f64,
        assigned: bool,
    },
    /// Not expressible as a path from an entry value.
    Unknown,
}

type State = HashMap<String, Sym>;

/// Resolve a variable to its current symbolic value (identity if never
/// assigned).
fn lookup(state: &State, var: &str) -> Sym {
    state.get(var).cloned().unwrap_or(Sym::Path {
        base: var.to_string(),
        affinity: 1.0,
        assigned: false,
    })
}

/// Resolve an expression to a symbolic path value, if it is one.
fn eval_expr(prog: &Program, state: &State, e: &Expr) -> Sym {
    match e.as_path() {
        Some((base, fields)) => match lookup(state, base) {
            Sym::Path {
                base: b0,
                affinity,
                assigned,
            } => {
                let fa: f64 = fields.iter().map(|f| prog.affinity(f)).product();
                Sym::Path {
                    base: b0,
                    affinity: affinity * fa,
                    // Navigating fields counts as a real update even from
                    // an identity binding.
                    assigned: assigned || !fields.is_empty(),
                }
            }
            Sym::Unknown => Sym::Unknown,
        },
        None => Sym::Unknown,
    }
}

/// Apply one statement's effect to the symbolic state. `rec` carries the
/// recursion-site collector when analysing a recursion loop.
fn eval_stmt(prog: &Program, state: &mut State, s: &Stmt, rec: &mut Option<RecCollector<'_>>) {
    // Collect recursive call sites *before* applying the statement's own
    // binding effect (arguments are evaluated in the pre-state).
    if let Some(rc) = rec.as_mut() {
        s.exprs(&mut |e| {
            if let Expr::Call { func, args, .. } = e {
                if func == rc.func {
                    rc.visit_site(prog, state, args);
                }
            }
        });
    }
    match s {
        Stmt::Assign { dst, src, .. } => {
            let v = eval_expr(prog, state, src);
            state.insert(dst.clone(), v);
        }
        Stmt::Store { .. } | Stmt::ExprStmt(_) | Stmt::Touch { .. } | Stmt::Return(_) => {
            // Stores mutate the heap, not variable bindings; returns end
            // the iteration on paths the merge rule already discounts.
        }
        Stmt::If { then_, else_, .. } => {
            let mut st = state.clone();
            let mut se = state.clone();
            for stmt in then_ {
                eval_stmt(prog, &mut st, stmt, rec);
            }
            for stmt in else_ {
                eval_stmt(prog, &mut se, stmt, rec);
            }
            *state = merge(st, se);
        }
        Stmt::While { body, .. } => {
            // A nested loop's net effect on enclosing-loop analysis:
            // anything it assigns becomes unknown (it ran 0..n times).
            let mut assigned = Vec::new();
            crate::ast::walk_stmts(body, &mut |s| {
                if let Stmt::Assign { dst, .. } = s {
                    assigned.push(dst.clone());
                }
            });
            for v in assigned {
                state.insert(v, Sym::Unknown);
            }
        }
    }
}

/// Join-point merge (§4.2 case 1): average affinities of updates present
/// in both branches along the same base; omit updates present in only
/// one; identity bindings flow through untouched.
fn merge(a: State, b: State) -> State {
    let mut out = State::new();
    let keys: std::collections::HashSet<&String> = a.keys().chain(b.keys()).collect();
    for k in keys {
        let va = a.get(k).cloned().unwrap_or(Sym::Path {
            base: k.clone(),
            affinity: 1.0,
            assigned: false,
        });
        let vb = b.get(k).cloned().unwrap_or(Sym::Path {
            base: k.clone(),
            affinity: 1.0,
            assigned: false,
        });
        let merged = match (va, vb) {
            (
                Sym::Path {
                    base: ba,
                    affinity: fa,
                    assigned: sa,
                },
                Sym::Path {
                    base: bb,
                    affinity: fb,
                    assigned: sb,
                },
            ) => {
                if ba == bb && sa == sb {
                    Sym::Path {
                        base: ba,
                        affinity: (fa + fb) / 2.0,
                        assigned: sa,
                    }
                } else if !sa && !sb {
                    Sym::Path {
                        base: ba,
                        affinity: 1.0,
                        assigned: false,
                    }
                } else {
                    // Assigned in only one branch, or along different
                    // bases: omit (the update is not guaranteed every
                    // iteration).
                    Sym::Unknown
                }
            }
            _ => Sym::Unknown,
        };
        out.insert(k.clone(), merged);
    }
    out
}

/// Collector for recursion loops: per parameter, the affinity contributed
/// by each recursive call site.
struct RecCollector<'a> {
    func: &'a str,
    params: &'a [String],
    /// `per_param[i]` = list of `(base, affinity, traversed)` from each
    /// call site; `traversed` is false for identity pass-throughs.
    per_param: Vec<Vec<Option<(String, f64, bool)>>>,
    sites: usize,
}

impl<'a> RecCollector<'a> {
    fn new(func: &'a str, params: &'a [String]) -> Self {
        RecCollector {
            func,
            params,
            per_param: vec![Vec::new(); params.len()],
            sites: 0,
        }
    }

    fn visit_site(&mut self, prog: &Program, state: &State, args: &[Expr]) {
        self.sites += 1;
        for (i, _p) in self.params.iter().enumerate() {
            let entry = args.get(i).and_then(|a| match eval_expr(prog, state, a) {
                Sym::Path {
                    base,
                    affinity,
                    assigned,
                } => Some((base, affinity, assigned)),
                Sym::Unknown => None,
            });
            self.per_param[i].push(entry);
        }
    }
}

/// Compute the update matrix of one control loop.
pub fn update_matrix(prog: &Program, cl: &ControlLoop) -> UpdateMatrix {
    let mut m = UpdateMatrix::default();
    match cl.kind {
        LoopKind::While { .. } => {
            let mut state = State::new();
            let mut rec = None;
            for s in &cl.body {
                eval_stmt(prog, &mut state, s, &mut rec);
            }
            for (var, sym) in state {
                if let Sym::Path {
                    base,
                    affinity,
                    assigned: true,
                } = sym
                {
                    m.insert(var, base, affinity);
                }
            }
        }
        LoopKind::Recursion => {
            let mut state = State::new();
            let mut collector = Some(RecCollector::new(&cl.func, &cl.params));
            for s in &cl.body {
                eval_stmt(prog, &mut state, s, &mut collector);
            }
            let rc = collector.unwrap();
            for (i, param) in cl.params.iter().enumerate() {
                let sites = &rc.per_param[i];
                if sites.is_empty() {
                    continue;
                }
                // All call sites must contribute a path along the same
                // base; otherwise the update is omitted.
                let first_base = match sites.first().and_then(|s| s.as_ref()) {
                    Some((b, _, _)) => b.clone(),
                    None => continue,
                };
                if !sites
                    .iter()
                    .all(|s| s.as_ref().is_some_and(|(b, _, _)| *b == first_base))
                {
                    continue;
                }
                // An argument that is passed through unchanged at every
                // site (`f(dir)`) is not traversing the structure — only
                // record the update if some site navigates a field.
                if !sites.iter().any(|s| s.as_ref().unwrap().2) {
                    continue;
                }
                // §4.2 case 2: both (all) updates execute; the combined
                // affinity is the probability at least one stays local.
                let p_all_remote: f64 = sites.iter().map(|s| 1.0 - s.as_ref().unwrap().1).product();
                m.insert(param.clone(), first_base, 1.0 - p_all_remote);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_control_loops;
    use crate::parser::parse;

    fn matrix_of(src: &str, loop_idx: usize) -> (crate::ast::Program, UpdateMatrix) {
        let p = parse(src).unwrap();
        let loops = find_control_loops(&p);
        let m = update_matrix(&p, &loops[loop_idx]);
        (p, m)
    }

    const FIG3: &str = r#"
        struct node { node *left @ 90; node *right @ 70; };
        void f(node *s, node *t, node *u) {
            while (s) {
                s = s->left;
                t = t->right->left;
                u = s->right;
            }
        }
    "#;

    #[test]
    fn figure3_matrix() {
        let (_, m) = matrix_of(FIG3, 0);
        // s ← s along left: 90.
        assert!((m.get("s", "s").unwrap() - 0.90).abs() < 1e-12);
        // t ← t along right->left: 0.7 × 0.9 = 63.
        assert!((m.get("t", "t").unwrap() - 0.63).abs() < 1e-12);
        // u ← s (not by itself!): s->left->right = 0.9 × 0.7.
        assert!((m.get("u", "s").unwrap() - 0.63).abs() < 1e-12);
        assert!(m.get("u", "u").is_none(), "u is not an induction variable");
        let ind = m.induction_vars();
        assert_eq!(
            ind.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec!["s", "t"]
        );
    }

    const FIG4: &str = r#"
        struct tree { tree *left @ 90; tree *right @ 70; int val; };
        int TreeAdd(tree *t) {
            if (t == null) { return 0; }
            else { return TreeAdd(t->left) + TreeAdd(t->right) + t->val; }
        }
    "#;

    #[test]
    fn figure4_recursion_combines_to_97() {
        let (_, m) = matrix_of(FIG4, 0);
        // 1 − (1 − .9)(1 − .7) = 0.97.
        assert!((m.get("t", "t").unwrap() - 0.97).abs() < 1e-12);
    }

    #[test]
    fn default_affinity_list_traversal() {
        let (_, m) = matrix_of(
            "struct list { list *next; }; void w(list *l) { while (l) { l = l->next; } }",
            0,
        );
        assert!((m.get("l", "l").unwrap() - crate::DEFAULT_AFFINITY).abs() < 1e-12);
    }

    #[test]
    fn join_averages_when_both_branches_update() {
        // Tree search: both branches assign t; affinities average.
        let (_, m) = matrix_of(
            r#"
            struct tree { tree *left @ 90; tree *right @ 70; int val; };
            void search(tree *t, int x) {
                while (t) {
                    if (x < t->val) { t = t->left; }
                    else { t = t->right; }
                }
            }
            "#,
            0,
        );
        assert!(
            (m.get("t", "t").unwrap() - 0.80).abs() < 1e-12,
            "avg(90,70)"
        );
    }

    #[test]
    fn join_averages_across_different_field_paths_on_same_base() {
        // §4.2 case 1 with *unequal paths*: both branches assign `t` from
        // `t`'s entry value, but one descends one field (0.90) and the
        // other two (0.7 × 0.9 = 0.63). Same base + both assigned ⇒ the
        // rule still averages the accumulated affinities: 0.765.
        let (_, m) = matrix_of(
            r#"
            struct tree { tree *left @ 90; tree *right @ 70; int val; };
            void rotate(tree *t, int x) {
                while (t) {
                    if (x < t->val) { t = t->left; }
                    else { t = t->right->left; }
                }
            }
            "#,
            0,
        );
        assert!(
            (m.get("t", "t").unwrap() - 0.765).abs() < 1e-12,
            "avg(0.90, 0.63), got {:?}",
            m.get("t", "t")
        );
    }

    #[test]
    fn row_affinity_prefers_diagonal_then_strongest() {
        let (_, m) = matrix_of(FIG3, 0);
        // s is an induction variable: diagonal wins.
        assert!((m.row_affinity("s").unwrap() - 0.90).abs() < 1e-12);
        // u has only the off-diagonal u ← s entry.
        assert!((m.row_affinity("u").unwrap() - 0.63).abs() < 1e-12);
        assert!(m.row_affinity("zzz").is_none());
    }

    #[test]
    fn join_omits_when_one_branch_lacks_update() {
        let (_, m) = matrix_of(
            r#"
            struct tree { tree *left @ 90; tree *right @ 70; int flag; };
            void f(tree *t) {
                while (t) {
                    if (t->flag) { t = t->left; }
                }
            }
            "#,
            0,
        );
        assert!(m.get("t", "t").is_none(), "update not in every iteration");
    }

    #[test]
    fn assignment_after_conditional_still_counts() {
        // `if (…) return; t = t->left;` — the update is on every completed
        // iteration.
        let (_, m) = matrix_of(
            r#"
            struct tree { tree *left @ 90; int val; };
            void f(tree *t, int x) {
                while (t) {
                    if (t->val == x) { return; }
                    t = t->left;
                }
            }
            "#,
            0,
        );
        assert!((m.get("t", "t").unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn non_path_update_is_omitted() {
        let (_, m) = matrix_of(
            r#"
            struct list { list *next; };
            void f(list *l) {
                while (l) {
                    l = pick(l);
                }
            }
            "#,
            0,
        );
        assert!(m.get("l", "l").is_none(), "call results are unknown");
    }

    #[test]
    fn single_recursive_call_keeps_plain_affinity() {
        let (_, m) = matrix_of(
            r#"
            struct list { list *next @ 80; };
            void walk(list *l) {
                if (l == null) { return; }
                walk(l->next);
            }
            "#,
            0,
        );
        assert!((m.get("l", "l").unwrap() - 0.80).abs() < 1e-12);
    }

    #[test]
    fn recursion_sites_with_different_bases_omit() {
        let (_, m) = matrix_of(
            r#"
            struct tree { tree *left; tree *right; };
            void f(tree *t, tree *u) {
                if (t == null) { return; }
                f(t->left, u);
                f(u->right, t);
            }
            "#,
            0,
        );
        // Param 1 (t): sites give bases t and u — omitted.
        assert!(m.get("t", "t").is_none());
        assert!(m.get("t", "u").is_none());
    }

    #[test]
    fn nested_while_clobbers_its_assignments() {
        let (_, m) = matrix_of(
            r#"
            struct node { node *next @ 95; node *inner; };
            void f(node *a, node *b) {
                while (a) {
                    b = a->inner;
                    while (b) { b = b->next; }
                    a = a->next;
                }
            }
            "#,
            0, // outer loop
        );
        assert!((m.get("a", "a").unwrap() - 0.95).abs() < 1e-12);
        assert!(m.get("b", "a").is_none(), "b is loop-dependent: unknown");
    }

    #[test]
    fn three_field_path_multiplies_all_affinities() {
        // §4.2 case 3 past two fields: `n->a->b->c` is the product of all
        // three per-field affinities, 0.9 × 0.8 × 0.5.
        let (_, m) = matrix_of(
            r#"
            struct node { node *a @ 90; node *b @ 80; node *c @ 50; };
            void f(node *n) {
                while (n) {
                    n = n->a->b->c;
                }
            }
            "#,
            0,
        );
        assert!((m.get("n", "n").unwrap() - 0.36).abs() < 1e-12);
    }

    #[test]
    fn three_recursive_sites_combine_at_least_one_local() {
        // §4.2 case 2 past Figure 4's pair: a ternary recursion combines
        // as 1 − (1−.9)(1−.7)(1−.5) = 0.985 — still "the probability at
        // least one child is local", not a sum or an average.
        let (_, m) = matrix_of(
            r#"
            struct tree { tree *c0 @ 90; tree *c1 @ 70; tree *c2 @ 50; };
            void walk(tree *t) {
                if (t == null) { return; }
                walk(t->c0);
                walk(t->c1);
                walk(t->c2);
            }
            "#,
            0,
        );
        assert!((m.get("t", "t").unwrap() - 0.985).abs() < 1e-12);
    }

    #[test]
    fn join_omits_when_branches_update_along_different_bases() {
        // Both branches assign `t`, but from different entry values; the
        // update has no single (row, column) home, so it is omitted — the
        // other half of §4.2 case 1 next to the one-branch-only rule.
        let (_, m) = matrix_of(
            r#"
            struct tree { tree *left @ 90; tree *right @ 70; int val; };
            void f(tree *t, tree *u, int x) {
                while (t) {
                    if (x < t->val) { t = t->left; }
                    else { t = u->right; }
                }
            }
            "#,
            0,
        );
        assert!(m.get("t", "t").is_none(), "no single base");
        assert!(m.get("t", "u").is_none(), "no single base");
    }

    #[test]
    fn updates_query() {
        let (_, m) = matrix_of(FIG3, 0);
        assert!(m.updates("s"));
        assert!(m.updates("u"));
        assert!(!m.updates("zzz"));
    }
}
