//! Static release-consistency race analysis (the compile half of
//! `olden-racecheck`).
//!
//! The paper's coherence story (Appendix A) rests on an implicit
//! contract: a migration send is a *release*, a migration receipt is an
//! *acquire*, and a stolen future body must not share written heap lines
//! with its continuation except through `touch`. Within one thread a
//! migration preserves program order (the send releases, the receipt
//! acquires), so the only constructs that create concurrency in the DSL
//! are `futurecall` (the spawn is a release: the body is ordered after
//! everything before it) and `touch` (an acquire: the continuation is
//! ordered after the body). Between a spawn and its touch the future body
//! and the continuation — and any sibling in-flight futures — may run
//! concurrently.
//!
//! This pass walks each function linearly, carrying the set of *in-flight*
//! futures, and reports every pair of concurrent accesses to overlapping
//! `(variable-path, field)` heap locations where at least one side writes:
//!
//! * [`crate::diag::codes::FUTURE_VS_CONTINUATION`] (RC001): a
//!   continuation access conflicts with an in-flight future's body;
//! * [`crate::diag::codes::SIBLING_FUTURES`] (RC002): two in-flight
//!   sibling futures conflict, or a loop-spawned future conflicts with
//!   the next iteration (itself included);
//! * [`crate::diag::codes::UNTOUCHED_FUTURE`] (RC003, a note): a future
//!   is still in flight when its function returns.
//!
//! **Location abstraction.** A heap access is `(root, field)`: the
//! syntactic root variable of the pointer path and the field read or
//! written. Every field on a multi-field path is attributed to the path's
//! root, which matches the update-matrix view of paths as navigations
//! from an iteration-entry value (§4.2): `t->left->val` reads
//! `(t, left)` and `(t, val)`. The abstraction cannot prove that two
//! subtrees of the same root are disjoint, so futures that *write*
//! disjoint halves of one structure are reported (a documented false
//! positive — kept because the pass must never miss a real race; the
//! dynamic sanitizer's detections are asserted to be a subset of this
//! pass's reports). Calls are resolved interprocedurally through
//! bounded-fixpoint *summaries* in terms of callee parameters; calls to
//! unknown (extern) functions are assumed to read their pointer
//! arguments (any field) and write nothing.

use crate::ast::{Expr, FuncDef, Program, Stmt};
use crate::diag::{codes, Diagnostic, Severity, Span};
use std::collections::{BTreeSet, HashMap};

/// Root of an abstract heap location.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
enum Base {
    /// Rooted at a function entry variable (or an opaque per-site root
    /// for call results, spelled `<f@line:col>` so it cannot collide
    /// with an identifier).
    Var(String),
    /// Unknown — may alias anything.
    Any,
}

impl Base {
    fn overlaps(&self, other: &Base) -> bool {
        matches!(self, Base::Any) || matches!(other, Base::Any) || self == other
    }

    fn show(&self) -> String {
        match self {
            Base::Var(v) => v.clone(),
            Base::Any => "?".into(),
        }
    }
}

/// The wildcard field (extern calls, whole-object effects).
const ANY_FIELD: &str = "*";

fn fields_overlap(a: &str, b: &str) -> bool {
    a == ANY_FIELD || b == ANY_FIELD || a == b
}

/// One may-access, with the source span it is reported at.
#[derive(Clone, Debug)]
struct Access {
    base: Base,
    field: String,
    write: bool,
    span: Span,
}

impl Access {
    fn loc(&self) -> String {
        if self.field == ANY_FIELD {
            format!("{}->…", self.base.show())
        } else {
            format!("{}->{}", self.base.show(), self.field)
        }
    }

    fn conflicts(&self, other: &Access) -> bool {
        (self.write || other.write)
            && self.base.overlaps(&other.base)
            && fields_overlap(&self.field, &other.field)
    }

    fn rw(&self) -> &'static str {
        if self.write {
            "write"
        } else {
            "read"
        }
    }
}

// ---------------------------------------------------------------------
// Function summaries
// ---------------------------------------------------------------------

/// Base of a summary location: a parameter of the summarised function,
/// or unknown.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
enum AbsBase {
    Param(usize),
    Any,
}

/// May-read / may-write sets of a function body in terms of its
/// parameters, reusing the symbolic-path discipline of the update-matrix
/// pass (§4.2): a local assigned `p->f…` stays rooted at `p`.
#[derive(Clone, Default, PartialEq, Debug)]
struct Summary {
    reads: BTreeSet<(AbsBase, String)>,
    writes: BTreeSet<(AbsBase, String)>,
}

type Env = HashMap<String, Base>;

fn resolve(env: &Env, var: &str) -> Base {
    env.get(var)
        .cloned()
        .unwrap_or_else(|| Base::Var(var.to_string()))
}

/// Opaque root for a call result: distinct from every identifier and
/// every other call site.
fn ret_root(func: &str, span: Span) -> Base {
    Base::Var(format!("<{func}@{span}>"))
}

/// Collect the heap accesses of evaluating `e` on the current thread into
/// `out`, and the bodies of futures it spawns into `spawned`. Callee
/// effects are instantiated from `summaries`.
fn expr_accesses(
    prog: &Program,
    summaries: &HashMap<String, Summary>,
    env: &Env,
    e: &Expr,
    out: &mut Vec<Access>,
    spawned: &mut Vec<InFlight>,
) {
    e.walk(&mut |sub| match sub {
        Expr::Path { base, fields, span } => {
            let root = resolve(env, base);
            for f in fields {
                out.push(Access {
                    base: root.clone(),
                    field: f.clone(),
                    write: false,
                    span: *span,
                });
            }
        }
        Expr::Call {
            func,
            args,
            future,
            span,
        } => {
            let acc = instantiate(prog, summaries, env, func, args, *span);
            if *future {
                spawned.push(InFlight {
                    func: func.clone(),
                    var: None,
                    span: *span,
                    acc,
                });
            } else {
                out.extend(acc);
            }
        }
        _ => {}
    });
}

/// The accesses `func(args)` may perform, in the caller's roots.
fn instantiate(
    prog: &Program,
    summaries: &HashMap<String, Summary>,
    env: &Env,
    func: &str,
    args: &[Expr],
    span: Span,
) -> Vec<Access> {
    let arg_base = |i: usize| -> Option<Base> {
        args.get(i)
            .and_then(|a| a.as_path())
            .map(|(b, _)| resolve(env, b))
    };
    let mut acc = Vec::new();
    match summaries.get(func) {
        Some(sm) => {
            for (write, set) in [(false, &sm.reads), (true, &sm.writes)] {
                for (ab, field) in set {
                    let base = match ab {
                        AbsBase::Param(i) => match arg_base(*i) {
                            Some(b) => b,
                            None => continue, // non-pointer argument
                        },
                        AbsBase::Any => Base::Any,
                    };
                    acc.push(Access {
                        base,
                        field: field.clone(),
                        write,
                        span,
                    });
                }
            }
        }
        None => {
            // Extern function: assume it reads (any field of) its pointer
            // arguments and writes nothing.
            let _ = prog;
            for i in 0..args.len() {
                if let Some(base) = arg_base(i) {
                    acc.push(Access {
                        base,
                        field: ANY_FIELD.into(),
                        write: false,
                        span,
                    });
                }
            }
        }
    }
    acc
}

/// Apply an assignment's effect on the root environment.
fn assign_env(env: &mut Env, dst: &str, src: &Expr) {
    let base = match src {
        Expr::Call { func, span, .. } => ret_root(func, *span),
        _ => match src.as_path() {
            Some((b, _)) => resolve(env, b),
            // Scalar / null: accesses through it would be meaningless;
            // give it a site-local root that aliases nothing.
            None => Base::Var(format!("<scalar:{dst}>")),
        },
    };
    env.insert(dst.to_string(), base);
}

/// Walk a statement list collecting current-thread accesses (ignoring
/// future spawns and touches) — used for summary computation.
fn summary_walk(
    prog: &Program,
    summaries: &HashMap<String, Summary>,
    env: &mut Env,
    stmts: &[Stmt],
    out: &mut Vec<Access>,
) {
    for s in stmts {
        match s {
            Stmt::Assign { dst, src, .. } => {
                let mut sp = Vec::new();
                expr_accesses(prog, summaries, env, src, out, &mut sp);
                // A future's body is part of the function's may-effects
                // seen by callers (it runs within the call's dynamic
                // extent or concurrently with the caller's continuation —
                // either way callers must account for it).
                for f in sp {
                    out.extend(f.acc);
                }
                assign_env(env, dst, src);
            }
            Stmt::Store {
                base,
                fields,
                src,
                span,
            } => {
                let mut sp = Vec::new();
                expr_accesses(prog, summaries, env, src, out, &mut sp);
                for f in sp {
                    out.extend(f.acc);
                }
                let root = resolve(env, base);
                for f in &fields[..fields.len() - 1] {
                    out.push(Access {
                        base: root.clone(),
                        field: f.clone(),
                        write: false,
                        span: *span,
                    });
                }
                out.push(Access {
                    base: root,
                    field: fields.last().unwrap().clone(),
                    write: true,
                    span: *span,
                });
            }
            Stmt::If { cond, then_, else_ } => {
                let mut sp = Vec::new();
                expr_accesses(prog, summaries, env, cond, out, &mut sp);
                for f in sp {
                    out.extend(f.acc);
                }
                let mut et = env.clone();
                let mut ee = env.clone();
                summary_walk(prog, summaries, &mut et, then_, out);
                summary_walk(prog, summaries, &mut ee, else_, out);
                merge_env(env, &et, &ee);
            }
            Stmt::While { cond, body } => {
                let mut sp = Vec::new();
                expr_accesses(prog, summaries, env, cond, out, &mut sp);
                for f in sp {
                    out.extend(f.acc);
                }
                summary_walk(prog, summaries, env, body, out);
            }
            Stmt::ExprStmt(e) | Stmt::Return(Some(e)) => {
                let mut sp = Vec::new();
                expr_accesses(prog, summaries, env, e, out, &mut sp);
                for f in sp {
                    out.extend(f.acc);
                }
            }
            Stmt::Touch { .. } | Stmt::Return(None) => {}
        }
    }
}

/// Merge branch environments at a join: agreement keeps the base,
/// disagreement goes to [`Base::Any`].
fn merge_env(env: &mut Env, then_: &Env, else_: &Env) {
    let keys: BTreeSet<&String> = then_.keys().chain(else_.keys()).collect();
    for k in keys {
        let a = then_
            .get(k)
            .cloned()
            .unwrap_or_else(|| Base::Var(k.clone()));
        let b = else_
            .get(k)
            .cloned()
            .unwrap_or_else(|| Base::Var(k.clone()));
        env.insert(k.clone(), if a == b { a } else { Base::Any });
    }
}

/// Compute one function's summary given the current summary map.
fn summarize_func(prog: &Program, summaries: &HashMap<String, Summary>, f: &FuncDef) -> Summary {
    let mut env: Env = f
        .params
        .iter()
        .map(|p| (p.clone(), Base::Var(p.clone())))
        .collect();
    let mut acc = Vec::new();
    summary_walk(prog, summaries, &mut env, &f.body, &mut acc);
    let mut sm = Summary::default();
    for a in acc {
        let ab = match &a.base {
            Base::Any => AbsBase::Any,
            Base::Var(v) => match f.params.iter().position(|p| p == v) {
                Some(i) => AbsBase::Param(i),
                // Function-local root (call result / scalar): invisible
                // to callers.
                None => continue,
            },
        };
        let set = if a.write {
            &mut sm.writes
        } else {
            &mut sm.reads
        };
        set.insert((ab, a.field));
    }
    sm
}

/// Bounded fixpoint over the call graph (direct and mutual recursion
/// both converge: summaries only grow and the lattice is finite).
fn summarize(prog: &Program) -> HashMap<String, Summary> {
    let mut summaries: HashMap<String, Summary> = prog
        .funcs
        .iter()
        .map(|f| (f.name.clone(), Summary::default()))
        .collect();
    for _round in 0..8 {
        let mut changed = false;
        for f in &prog.funcs {
            let sm = summarize_func(prog, &summaries, f);
            if summaries.get(&f.name) != Some(&sm) {
                summaries.insert(f.name.clone(), sm);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

// ---------------------------------------------------------------------
// The race walk
// ---------------------------------------------------------------------

/// A spawned, not-yet-touched future.
#[derive(Clone, Debug)]
struct InFlight {
    func: String,
    /// Variable holding the future's value (None for bare
    /// `futurecall f(…);` statements — those can never be touched).
    var: Option<String>,
    /// Spawn site.
    span: Span,
    /// The body's may-accesses, in the spawner's roots.
    acc: Vec<Access>,
}

struct Checker<'a> {
    prog: &'a Program,
    summaries: &'a HashMap<String, Summary>,
    func: &'a str,
    diags: Vec<Diagnostic>,
    /// Dedup: (code, primary span, other span, location) already reported.
    seen: BTreeSet<(String, Span, Span, String)>,
}

impl<'a> Checker<'a> {
    fn report_rc001(&mut self, cur: &Access, fut: &InFlight, body: &Access) {
        let key = (
            codes::FUTURE_VS_CONTINUATION.to_string(),
            cur.span,
            fut.span,
            cur.loc(),
        );
        if !self.seen.insert(key) {
            return;
        }
        let mut d = Diagnostic::new(
            codes::FUTURE_VS_CONTINUATION,
            Severity::Warning,
            cur.span,
            format!(
                "{} of `{}` may race with in-flight future `{}` ({} in its body)",
                cur.rw(),
                cur.loc(),
                fut.func,
                body.rw(),
            ),
        )
        .with_note(format!("future spawned at {}", fut.span));
        if let Some(v) = &fut.var {
            d = d.with_note(format!("order the accesses with `touch {v};`"));
        }
        self.diags.push(d);
    }

    fn report_rc002(&mut self, a: &InFlight, b: &InFlight, loc: &Access, loop_carried: bool) {
        let key = (
            codes::SIBLING_FUTURES.to_string(),
            b.span,
            a.span,
            loc.loc(),
        );
        if !self.seen.insert(key) {
            return;
        }
        let msg = if loop_carried && a.span == b.span {
            format!(
                "future `{}` spawned in a loop may race with its next-iteration sibling on `{}`",
                a.func,
                loc.loc()
            )
        } else {
            format!(
                "sibling futures `{}` and `{}` may race on `{}`",
                a.func,
                b.func,
                loc.loc()
            )
        };
        let d = Diagnostic::new(codes::SIBLING_FUTURES, Severity::Warning, b.span, msg)
            .with_note(format!("other future spawned at {}", a.span));
        self.diags.push(d);
    }

    /// Check one batch of current-thread accesses against every in-flight
    /// future.
    fn check_current(&mut self, cur: &[Access], inflight: &[InFlight]) {
        for c in cur {
            for fut in inflight {
                for b in &fut.acc {
                    if c.conflicts(b) {
                        self.report_rc001(c, fut, b);
                        break; // one report per (access, future)
                    }
                }
            }
        }
    }

    /// Check a newly spawned future against the already-in-flight set.
    fn check_sibling(&mut self, new: &InFlight, inflight: &[InFlight], loop_carried: bool) {
        for old in inflight {
            'pairs: for a in &old.acc {
                for b in &new.acc {
                    if a.conflicts(b) {
                        self.report_rc002(old, new, b, loop_carried);
                        break 'pairs;
                    }
                }
            }
        }
    }

    /// Walk statements, carrying the root environment and in-flight set.
    /// Appends every current-thread access to `collected` (used by loop
    /// bodies for the loop-carried check).
    fn walk(
        &mut self,
        env: &mut Env,
        inflight: &mut Vec<InFlight>,
        stmts: &[Stmt],
        collected: &mut Vec<Access>,
    ) {
        for s in stmts {
            match s {
                Stmt::Touch { var, .. } => {
                    inflight.retain(|f| f.var.as_deref() != Some(var));
                }
                Stmt::If { cond, then_, else_ } => {
                    self.step_expr(env, inflight, cond, collected);
                    let mut env_t = env.clone();
                    let mut env_e = env.clone();
                    let mut inf_t = inflight.clone();
                    let mut inf_e = inflight.clone();
                    self.walk(&mut env_t, &mut inf_t, then_, collected);
                    self.walk(&mut env_e, &mut inf_e, else_, collected);
                    merge_env(env, &env_t, &env_e);
                    // A future is still in flight if either branch left it
                    // in flight (the other may not have executed).
                    let mut merged = inf_t;
                    for f in inf_e {
                        if !merged
                            .iter()
                            .any(|g| g.span == f.span && g.var == f.var && g.func == f.func)
                        {
                            merged.push(f);
                        }
                    }
                    *inflight = merged;
                }
                Stmt::While { cond, body } => {
                    self.step_expr(env, inflight, cond, collected);
                    let pre_spans: BTreeSet<Span> = inflight.iter().map(|f| f.span).collect();
                    let mut body_acc = Vec::new();
                    self.walk(env, inflight, body, &mut body_acc);
                    // Loop-carried concurrency: a future spawned in the
                    // body and still in flight at its end overlaps the
                    // next iteration — both its sibling spawned there and
                    // every current-thread access of the body.
                    let carried: Vec<InFlight> = inflight
                        .iter()
                        .filter(|f| !pre_spans.contains(&f.span))
                        .cloned()
                        .collect();
                    for f in &carried {
                        self.check_current(&body_acc, std::slice::from_ref(f));
                        self.check_sibling(f, std::slice::from_ref(f), true);
                    }
                    collected.extend(body_acc);
                }
                Stmt::Assign { dst, src, .. } => {
                    let spawned = self.step_expr(env, inflight, src, collected);
                    assign_env(env, dst, src);
                    for mut f in spawned {
                        f.var = Some(dst.clone());
                        self.check_sibling(&f, inflight, false);
                        inflight.push(f);
                    }
                }
                Stmt::Store {
                    base,
                    fields,
                    src,
                    span,
                } => {
                    let spawned = self.step_expr(env, inflight, src, collected);
                    let root = resolve(env, base);
                    let mut cur = Vec::new();
                    for f in &fields[..fields.len() - 1] {
                        cur.push(Access {
                            base: root.clone(),
                            field: f.clone(),
                            write: false,
                            span: *span,
                        });
                    }
                    cur.push(Access {
                        base: root,
                        field: fields.last().unwrap().clone(),
                        write: true,
                        span: *span,
                    });
                    self.check_current(&cur, inflight);
                    collected.extend(cur);
                    for f in spawned {
                        self.check_sibling(&f, inflight, false);
                        inflight.push(f);
                    }
                }
                Stmt::ExprStmt(e) | Stmt::Return(Some(e)) => {
                    let spawned = self.step_expr(env, inflight, e, collected);
                    for f in spawned {
                        self.check_sibling(&f, inflight, false);
                        inflight.push(f);
                    }
                }
                Stmt::Return(None) => {}
            }
        }
    }

    /// Evaluate one expression: check its current-thread accesses against
    /// the in-flight set and return the futures it spawns (not yet added
    /// to the set — argument evaluation precedes the spawn, so the
    /// expression's own reads are ordered before the new bodies).
    fn step_expr(
        &mut self,
        env: &Env,
        inflight: &[InFlight],
        e: &Expr,
        collected: &mut Vec<Access>,
    ) -> Vec<InFlight> {
        let mut cur = Vec::new();
        let mut spawned = Vec::new();
        expr_accesses(self.prog, self.summaries, env, e, &mut cur, &mut spawned);
        self.check_current(&cur, inflight);
        collected.extend(cur);
        spawned
    }

    fn finish(&mut self, inflight: &[InFlight]) {
        for f in inflight {
            let key = (
                codes::UNTOUCHED_FUTURE.to_string(),
                f.span,
                f.span,
                String::new(),
            );
            if !self.seen.insert(key) {
                continue;
            }
            self.diags.push(Diagnostic::new(
                codes::UNTOUCHED_FUTURE,
                Severity::Note,
                f.span,
                format!(
                    "future `{}` is never touched before `{}` returns",
                    f.func, self.func
                ),
            ));
        }
    }
}

/// Run the static race analysis over a whole program.
///
/// Diagnostics are deterministic: sorted by source position, then lint
/// code, then message.
pub fn racecheck(prog: &Program) -> Vec<Diagnostic> {
    let summaries = summarize(prog);
    let mut diags = Vec::new();
    for f in &prog.funcs {
        let mut ck = Checker {
            prog,
            summaries: &summaries,
            func: &f.name,
            diags: Vec::new(),
            seen: BTreeSet::new(),
        };
        let mut env: Env = f
            .params
            .iter()
            .map(|p| (p.clone(), Base::Var(p.clone())))
            .collect();
        let mut inflight = Vec::new();
        let mut collected = Vec::new();
        ck.walk(&mut env, &mut inflight, &f.body, &mut collected);
        ck.finish(&inflight);
        diags.extend(ck.diags);
    }
    diags.sort_by(|a, b| {
        (a.span, a.code, &a.message)
            .partial_cmp(&(b.span, b.code, &b.message))
            .unwrap()
    });
    diags
}

/// Parse and check in one step (what `oldenc` does per file).
pub fn racecheck_src(src: &str) -> Result<Vec<Diagnostic>, crate::parser::ParseError> {
    Ok(racecheck(&crate::parser::parse(src)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Vec<Diagnostic> {
        racecheck(&parse(src).unwrap())
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_when_touch_orders_write() {
        let d = check(
            r#"
            struct tree { tree *left; tree *right; int val; };
            int Work(tree *t) { t->val = 1; return 0; }
            int g(tree *t) {
                int h = futurecall Work(t);
                touch h;
                t->val = 2;
                return t->val;
            }
            "#,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn rc001_write_write_future_vs_continuation() {
        let d = check(
            r#"
            struct tree { tree *left; tree *right; int val; };
            int Work(tree *t) { t->val = 1; return 0; }
            int g(tree *t) {
                int h = futurecall Work(t);
                t->val = 2;
                touch h;
                return t->val;
            }
            "#,
        );
        assert_eq!(codes_of(&d), vec![codes::FUTURE_VS_CONTINUATION], "{d:?}");
        assert!(d[0].message.contains("t->val"), "{}", d[0].message);
        assert!(d[0].notes.iter().any(|n| n.contains("touch h")), "{d:?}");
    }

    #[test]
    fn rc001_read_write_conflict() {
        let d = check(
            r#"
            struct node { node *next; int v; };
            int Bump(node *n) { n->v = n->v + 1; return 0; }
            int g(node *n) {
                int h = futurecall Bump(n);
                int x = n->v;
                touch h;
                return x;
            }
            "#,
        );
        assert_eq!(codes_of(&d), vec![codes::FUTURE_VS_CONTINUATION], "{d:?}");
    }

    #[test]
    fn read_only_futures_are_clean() {
        // TreeAdd's shape: sibling futures that only read.
        let d = check(
            r#"
            struct tree { tree *left @ 90; tree *right @ 70; int val; };
            int TreeAdd(tree *t) {
                if (t == null) { return 0; }
                int l = futurecall TreeAdd(t->left);
                int r = TreeAdd(t->right);
                touch l;
                return l + r + t->val;
            }
            "#,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn rc002_sibling_futures_conflict() {
        let d = check(
            r#"
            struct tree { tree *left; tree *right; int val; };
            int Mark(tree *t) { t->val = 1; return 0; }
            int g(tree *t) {
                int a = futurecall Mark(t->left);
                int b = futurecall Mark(t->left);
                touch a;
                touch b;
                return 0;
            }
            "#,
        );
        assert_eq!(codes_of(&d), vec![codes::SIBLING_FUTURES], "{d:?}");
    }

    #[test]
    fn rc002_loop_carried_future() {
        let d = check(
            r#"
            struct list { list *next; };
            struct tree { tree *left; int val; };
            int Mark(tree *t) { t->val = 1; return 0; }
            void WalkAndMark(list *l, tree *t) {
                while (l != null) {
                    futurecall Mark(t);
                    l = l->next;
                }
            }
            "#,
        );
        // The bare futurecall is never touched (RC003) and races with its
        // next-iteration sibling (RC002).
        assert!(codes_of(&d).contains(&codes::SIBLING_FUTURES), "{d:?}");
        assert!(codes_of(&d).contains(&codes::UNTOUCHED_FUTURE), "{d:?}");
    }

    #[test]
    fn rc003_untouched_future_notes() {
        let d = check(
            r#"
            struct tree { tree *left; int val; };
            int Sum(tree *t) { if (t == null) { return 0; } return Sum(t->left) + t->val; }
            int g(tree *t) {
                int h = futurecall Sum(t);
                return 0;
            }
            "#,
        );
        assert_eq!(codes_of(&d), vec![codes::UNTOUCHED_FUTURE], "{d:?}");
        assert_eq!(d[0].severity, Severity::Note);
    }

    #[test]
    fn touch_in_both_branches_clears() {
        let d = check(
            r#"
            struct tree { tree *left; int val; };
            int Work(tree *t) { t->val = 1; return 0; }
            int g(tree *t, int c) {
                int h = futurecall Work(t);
                if (c) { touch h; } else { touch h; }
                t->val = 2;
                return 0;
            }
            "#,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn touch_in_one_branch_keeps_inflight() {
        let d = check(
            r#"
            struct tree { tree *left; int val; };
            int Work(tree *t) { t->val = 1; return 0; }
            int g(tree *t, int c) {
                int h = futurecall Work(t);
                if (c) { touch h; }
                t->val = 2;
                touch h;
                return 0;
            }
            "#,
        );
        assert_eq!(codes_of(&d), vec![codes::FUTURE_VS_CONTINUATION], "{d:?}");
    }

    #[test]
    fn interprocedural_write_through_callee() {
        // The continuation's conflicting write happens inside a helper.
        let d = check(
            r#"
            struct tree { tree *left; int val; };
            int Work(tree *t) { t->val = 1; return 0; }
            void Helper(tree *u) { u->val = 3; }
            int g(tree *t) {
                int h = futurecall Work(t);
                Helper(t);
                touch h;
                return 0;
            }
            "#,
        );
        assert_eq!(codes_of(&d), vec![codes::FUTURE_VS_CONTINUATION], "{d:?}");
    }

    #[test]
    fn recursive_summary_converges() {
        // Mark recurses; its write must still be seen through the fixpoint.
        let d = check(
            r#"
            struct tree { tree *left; tree *right; int val; };
            void Mark(tree *t) {
                if (t == null) { return; }
                t->val = 1;
                Mark(t->left);
                Mark(t->right);
            }
            int g(tree *t) {
                int h = futurecall Mark(t);
                int x = t->val;
                touch h;
                return x;
            }
            "#,
        );
        assert_eq!(codes_of(&d), vec![codes::FUTURE_VS_CONTINUATION], "{d:?}");
    }

    #[test]
    fn distinct_roots_do_not_conflict() {
        let d = check(
            r#"
            struct tree { tree *left; int val; };
            int Work(tree *t) { t->val = 1; return 0; }
            int g(tree *t, tree *u) {
                int h = futurecall Work(t);
                u->val = 2;
                touch h;
                return 0;
            }
            "#,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn extern_calls_assumed_read_only() {
        let d = check(
            r#"
            struct tree { tree *left; int val; };
            int Sum(tree *t) { if (t == null) { return 0; } return Sum(t->left) + t->val; }
            int g(tree *t) {
                int h = futurecall Sum(t);
                Print(t);
                touch h;
                return 0;
            }
            "#,
        );
        // Print reads t->… ; Sum's body only reads — no conflict.
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn diagnostics_are_sorted_and_deterministic() {
        let src = r#"
            struct tree { tree *left; int val; };
            int W(tree *t) { t->val = 1; return 0; }
            int g(tree *t) {
                int a = futurecall W(t);
                t->val = 2;
                int x = t->val;
                return x;
            }
        "#;
        let d1 = check(src);
        let d2 = check(src);
        assert_eq!(d1, d2);
        assert!(d1.len() >= 2);
        let spans: Vec<_> = d1.iter().map(|d| d.span).collect();
        let mut sorted = spans.clone();
        sorted.sort();
        assert_eq!(spans, sorted);
    }
}
