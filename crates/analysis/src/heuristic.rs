//! The two-pass mechanism-selection heuristic (§4.3).
//!
//! **Pass 1**, each control loop in isolation: select the induction
//! variable whose update has the strongest path-affinity. Migration is
//! chosen for it when the affinity reaches the 90 % threshold *or* the
//! loop is parallelizable (migration is what lets Olden generate new
//! threads); otherwise its dereferences are cached. Every other pointer
//! variable is cached. A loop with no induction variable selects
//! migration for the same variable as its parent loop.
//!
//! **Pass 2**, interactions between nested loops: inside a parallel loop,
//! migrating on an inner structure whose root is *the same across
//! iterations* would serialize every thread on that root's processor
//! (Figure 5's `WalkAndTraverse`). The approximation from the paper: if
//! the inner loop's induction-variable seed is updated in the parent
//! loop, assume no bottleneck; otherwise force the inner loop to caching.
//! Incorrect answers here cost time, never correctness.

use crate::ast::{Expr, Program, Stmt};
use crate::loops::{find_control_loops, LoopId, LoopKind};
use crate::update::{update_matrix, UpdateMatrix};
use crate::{Mech, MIGRATION_THRESHOLD};
use std::collections::HashMap;

/// The heuristic's decision for one control loop.
#[derive(Clone, Debug)]
pub struct LoopChoice {
    pub loop_id: LoopId,
    pub func: String,
    pub kind: LoopKind,
    pub parallel: bool,
    /// The variable selected as the loop's traversal variable, if any.
    pub selected: Option<String>,
    /// Its update affinity (absent when inherited from the parent).
    pub affinity: Option<f64>,
    /// Whether the selection was inherited from the parent loop.
    pub inherited: bool,
    /// Mechanism per pointer variable appearing in the loop's matrix.
    pub mechanisms: HashMap<String, Mech>,
    /// Set by pass 2 when migration was demoted to caching to avoid a
    /// bottleneck.
    pub bottleneck: bool,
}

impl LoopChoice {
    /// Mechanism for dereferences of `var` in this loop. Variables not
    /// mentioned in the matrix are cached ("dereferences of all other
    /// pointer variables are cached", §4.3).
    pub fn mech(&self, var: &str) -> Mech {
        self.mechanisms.get(var).copied().unwrap_or(Mech::Cache)
    }

    /// The variable this loop migrates on, if any.
    pub fn migration_var(&self) -> Option<&str> {
        self.selected
            .as_deref()
            .filter(|v| self.mechanisms.get(*v) == Some(&Mech::Migrate))
    }
}

/// The complete selection for a program.
#[derive(Clone, Debug)]
pub struct Selection {
    pub loops: Vec<LoopChoice>,
    matrices: Vec<UpdateMatrix>,
}

impl Selection {
    /// All choices for loops belonging to `func`.
    pub fn for_func(&self, func: &str) -> Vec<&LoopChoice> {
        self.loops.iter().filter(|l| l.func == func).collect()
    }

    /// The choice for `func`'s recursion loop, if it has one.
    pub fn recursion_of(&self, func: &str) -> Option<&LoopChoice> {
        self.loops
            .iter()
            .find(|l| l.func == func && matches!(l.kind, LoopKind::Recursion))
    }

    /// Mechanism for dereferences of `var` anywhere in `func`: migrate if
    /// any of the function's loops migrates on it, cache otherwise.
    pub fn mech(&self, func: &str, var: &str) -> Mech {
        for l in self.for_func(func) {
            if l.migration_var() == Some(var) {
                return Mech::Migrate;
            }
        }
        Mech::Cache
    }

    /// The update matrix computed for a loop (kept for reporting and for
    /// tests that reproduce Figures 3 and 4).
    pub fn matrix(&self, id: LoopId) -> &UpdateMatrix {
        &self.matrices[id.0]
    }

    /// Summary string: one line per loop (used by the heuristic-tour
    /// example).
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for l in &self.loops {
            let kind = match &l.kind {
                LoopKind::While { cond } => format!("while ({cond})"),
                LoopKind::Recursion => "recursion".to_string(),
            };
            let sel = match (&l.selected, l.affinity) {
                (Some(v), Some(a)) => format!("{v} @ {:.0}%", a * 100.0),
                (Some(v), None) => format!("{v} (inherited)"),
                _ => "-".to_string(),
            };
            let mech = l
                .selected
                .as_deref()
                .map(|v| l.mech(v).name())
                .unwrap_or("-");
            let _ = writeln!(
                s,
                "{}: {} [{}{}] selected={} -> {}{}",
                l.func,
                kind,
                if l.parallel { "parallel" } else { "serial" },
                if l.bottleneck { ", bottleneck" } else { "" },
                sel,
                mech,
                if l.inherited { " (from parent)" } else { "" },
            );
        }
        s
    }
}

/// Is `var` syntactically assigned anywhere in `stmts` (at any depth)?
fn assigns(stmts: &[Stmt], var: &str) -> bool {
    let mut found = false;
    crate::ast::walk_stmts(stmts, &mut |s| {
        if let Stmt::Assign { dst, .. } = s {
            if dst == var {
                found = true;
            }
        }
    });
    found
}

/// Visit `dst = src` assignments in `stmts`, descending into `if`
/// branches but *not* into nested `while` loops — a nested loop's own
/// induction update is not a re-seeding by the enclosing iteration.
fn immediate_assigns(stmts: &[Stmt], f: &mut impl FnMut(&str, &Expr)) {
    for s in stmts {
        match s {
            Stmt::Assign { dst, src, .. } => f(dst, src),
            Stmt::If { then_, else_, .. } => {
                immediate_assigns(then_, f);
                immediate_assigns(else_, f);
            }
            _ => {}
        }
    }
}

/// Run the full three-step selection over a program.
pub fn select(prog: &Program) -> Selection {
    let loops = find_control_loops(prog);
    let matrices: Vec<UpdateMatrix> = loops.iter().map(|l| update_matrix(prog, l)).collect();

    // ---- Pass 1: each control loop in isolation -----------------------
    let mut choices: Vec<LoopChoice> = Vec::with_capacity(loops.len());
    for (cl, m) in loops.iter().zip(&matrices) {
        let induction = m.induction_vars();
        let mut mechanisms: HashMap<String, Mech> = HashMap::new();
        for v in m.row_vars() {
            mechanisms.insert(v.to_string(), Mech::Cache);
        }
        let (selected, affinity, inherited);
        match induction.first() {
            Some(&(var, aff)) => {
                selected = Some(var.to_string());
                affinity = Some(aff);
                inherited = false;
                let mech = if aff >= MIGRATION_THRESHOLD || cl.parallel {
                    Mech::Migrate
                } else {
                    Mech::Cache
                };
                mechanisms.insert(var.to_string(), mech);
            }
            None => {
                // Inherit the parent's migration variable (parents appear
                // earlier in the vector).
                let parent_var = cl
                    .parent
                    .and_then(|p| choices[p.0].migration_var().map(str::to_string));
                inherited = parent_var.is_some();
                affinity = None;
                if let Some(v) = parent_var {
                    mechanisms.insert(v.clone(), Mech::Migrate);
                    selected = Some(v);
                } else {
                    selected = None;
                }
            }
        }
        choices.push(LoopChoice {
            loop_id: cl.id,
            func: cl.func.clone(),
            kind: cl.kind.clone(),
            parallel: cl.parallel,
            selected,
            affinity,
            inherited,
            mechanisms,
            bottleneck: false,
        });
    }

    // ---- Pass 2: interactions between nested loops --------------------
    // For each parallelizable loop, examine (a) inner while loops in the
    // same function and (b) called functions' recursion loops; demote
    // migration to caching when the inner induction variable's seed is
    // loop-invariant in the parent.
    let mut demote: Vec<LoopId> = Vec::new();
    for (pi, parent) in loops.iter().enumerate() {
        if !parent.parallel {
            continue;
        }
        let pm = &matrices[pi];
        let seed_is_fresh = |base: &str| -> bool {
            // "Updated in the parent loop": assigned in its body or has an
            // update entry in its matrix (covers recursion parameters).
            pm.updates(base) || assigns(&parent.body, base)
        };

        // (a) Directly nested loops in the same function. Only seed
        // assignments *outside* nested loop bodies count — the child's
        // own `p = p->next` is not a re-seeding by the parent iteration.
        for (ci, child) in loops.iter().enumerate() {
            if child.parent != Some(parent.id) {
                continue;
            }
            let Some(var) = choices[ci].migration_var().map(str::to_string) else {
                continue;
            };
            let mut seeds: Vec<Option<String>> = Vec::new();
            immediate_assigns(&parent.body, &mut |dst, src| {
                if dst == var {
                    seeds.push(src.as_path().map(|(b, _)| b.to_string()));
                }
            });
            let fresh = if seeds.is_empty() {
                // Never re-seeded between iterations: fresh only when the
                // parent's own update advances it (an inherited induction
                // variable).
                pm.updates(&var)
            } else {
                seeds.iter().any(|seed| match seed.as_deref() {
                    Some(b) => b == var || seed_is_fresh(b),
                    None => true, // unknown seed (call result): no claim
                })
            };
            if !fresh {
                demote.push(child.id);
            }
        }

        // (b) Calls out of the parallel loop into recursive functions.
        let mut callee_seeds: Vec<(String, Option<String>)> = Vec::new();
        crate::ast::walk_stmts(&parent.body, &mut |s| {
            s.exprs(&mut |e| {
                if let Expr::Call { func, args, .. } = e {
                    if func == &parent.func {
                        return; // the parent's own recursion
                    }
                    if let Some(g) = prog.func(func) {
                        // Seed = base of the argument bound to the callee's
                        // migration parameter; resolved below.
                        for (i, _) in g.params.iter().enumerate() {
                            let base = args
                                .get(i)
                                .and_then(|a| a.as_path())
                                .map(|(b, _)| b.to_string());
                            callee_seeds.push((format!("{func}#{i}"), base));
                        }
                    }
                }
            });
        });
        for (key, base) in callee_seeds {
            let (callee, idx) = key.split_once('#').unwrap();
            let idx: usize = idx.parse().unwrap();
            let Some(g) = prog.func(callee) else { continue };
            let Some(param) = g.params.get(idx) else {
                continue;
            };
            // Find the callee's recursion loop choice.
            let Some((ci, _)) = loops
                .iter()
                .enumerate()
                .find(|(_, l)| l.func == callee && matches!(l.kind, LoopKind::Recursion))
            else {
                continue;
            };
            if choices[ci].migration_var() != Some(param.as_str()) {
                continue;
            }
            let fresh = base.as_deref().is_some_and(seed_is_fresh);
            if !fresh {
                demote.push(LoopId(ci));
            }
        }
    }

    for id in demote {
        let c = &mut choices[id.0];
        if let Some(v) = c.selected.clone() {
            c.mechanisms.insert(v, Mech::Cache);
            c.bottleneck = true;
        }
    }

    Selection {
        loops: choices,
        matrices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sel(src: &str) -> Selection {
        select(&parse(src).unwrap())
    }

    #[test]
    fn tree_traversal_migrates_by_default() {
        // §4.3: "by default … tree traversals will use computation
        // migration". Two recursive calls at the 70 % default combine to
        // 1 − 0.3² = 0.91 ≥ 0.90.
        let s = sel(r#"
            struct tree { tree *left; tree *right; };
            void T(tree *t) {
                if (t == null) { return; }
                T(t->left);
                T(t->right);
            }
        "#);
        let c = s.recursion_of("T").unwrap();
        assert_eq!(c.migration_var(), Some("t"));
        assert!((c.affinity.unwrap() - 0.91).abs() < 1e-12);
        assert_eq!(s.mech("T", "t"), Mech::Migrate);
    }

    #[test]
    fn list_traversal_caches_by_default() {
        // §4.3: "list traversals will use caching" — 70 % < 90 %.
        let s = sel(r#"
            struct list { list *next; };
            void W(list *l) { while (l) { l = l->next; } }
        "#);
        let c = &s.for_func("W")[0];
        assert_eq!(c.mech("l"), Mech::Cache);
        assert_eq!(c.migration_var(), None);
        assert_eq!(s.mech("W", "l"), Mech::Cache);
    }

    #[test]
    fn tree_search_caches_by_default() {
        // §4.3: "tree searches will use caching" — avg(70, 70) < 90.
        let s = sel(r#"
            struct tree { tree *left; tree *right; int val; };
            void S(tree *t, int x) {
                while (t) {
                    if (x < t->val) { t = t->left; } else { t = t->right; }
                }
            }
        "#);
        assert_eq!(s.for_func("S")[0].mech("t"), Mech::Cache);
    }

    #[test]
    fn threshold_boundary() {
        // Exactly 90 % migrates; 89 % caches.
        let at = sel(r#"
            struct l90 { l90 *next @ 90; };
            void f(l90 *p) { while (p) { p = p->next; } }
        "#);
        assert_eq!(at.for_func("f")[0].mech("p"), Mech::Migrate);
        let below = sel(r#"
            struct l89 { l89 *next @ 89; };
            void f(l89 *p) { while (p) { p = p->next; } }
        "#);
        assert_eq!(below.for_func("f")[0].mech("p"), Mech::Cache);
    }

    #[test]
    fn parallelizable_loop_migrates_below_threshold() {
        // Futures force migration so new threads can be generated.
        let s = sel(r#"
            struct list { list *next; work *item; };
            struct work { int x; };
            void f(list *l) {
                while (l) {
                    futurecall Do(l->item);
                    l = l->next;
                }
            }
        "#);
        let c = &s.for_func("f")[0];
        assert!(c.parallel);
        assert_eq!(c.mech("l"), Mech::Migrate, "70% but parallelizable");
    }

    #[test]
    fn other_variables_cache() {
        let s = sel(r#"
            struct node { node *next @ 95; node *peer; };
            void f(node *a) {
                while (a) {
                    node *b = a->peer;
                    a = a->next;
                }
            }
        "#);
        let c = &s.for_func("f")[0];
        assert_eq!(c.mech("a"), Mech::Migrate);
        assert_eq!(c.mech("b"), Mech::Cache);
        assert_eq!(c.mech("anything_else"), Mech::Cache);
    }

    #[test]
    fn loop_without_induction_var_inherits_parent() {
        let s = sel(r#"
            struct node { node *next @ 95; };
            void f(node *a, int n) {
                while (a) {
                    int i = 0;
                    while (i < n) { i = consume(a, i); }
                    a = a->next;
                }
            }
        "#);
        let inner = &s.for_func("f")[1];
        assert!(inner.inherited);
        assert_eq!(inner.migration_var(), Some("a"));
    }

    #[test]
    fn parent_without_migration_var_leaves_inner_unselected() {
        // The inheritance rule's other edge: the parent *caches* (70 %
        // list walk), so an induction-free inner loop has nothing to
        // inherit and selects no variable at all.
        let s = sel(r#"
            struct list { list *next; };
            void f(list *l, int n) {
                while (l) {
                    int i = 0;
                    while (i < n) { i = consume(l, i); }
                    l = l->next;
                }
            }
        "#);
        let inner = &s.for_func("f")[1];
        assert!(!inner.inherited, "nothing to inherit");
        assert!(inner.selected.is_none());
        assert_eq!(inner.migration_var(), None);
    }

    #[test]
    fn nested_walk_of_shared_structure_demoted_in_parallel_loop() {
        // Pass-2 case (a), the inline WalkAndTraverse shape: the inner
        // while would migrate on `c` (95 %), but its seed `g` is the same
        // for every parallel iteration — every thread would serialize on
        // g's processor. Demote to caching.
        let s = sel(r#"
            struct list { list *next; work *item; };
            struct work { int x; };
            struct chain { chain *hop @ 95; };
            void f(list *l, chain *g) {
                while (l) {
                    futurecall Do(l->item);
                    chain *c = g;
                    while (c) { c = c->hop; }
                    l = l->next;
                }
            }
        "#);
        let inner = &s.for_func("f")[1];
        assert!(inner.bottleneck, "shared seed g must demote");
        assert_eq!(inner.mech("c"), Mech::Cache);
        assert_eq!(inner.migration_var(), None);
    }

    #[test]
    fn nested_walk_keeps_migration_when_seed_advances_with_parent() {
        // Same shape, but the seed hangs off the parent's induction
        // variable: every iteration walks a *different* chain, so the
        // pass-1 migration choice stands.
        let s = sel(r#"
            struct list { list *next; work *item; chain *start; };
            struct work { int x; };
            struct chain { chain *hop @ 95; };
            void f(list *l) {
                while (l) {
                    futurecall Do(l->item);
                    chain *c = l->start;
                    while (c) { c = c->hop; }
                    l = l->next;
                }
            }
        "#);
        let inner = &s.for_func("f")[1];
        assert!(!inner.bottleneck);
        assert_eq!(inner.migration_var(), Some("c"));
    }

    const FIG5: &str = r#"
        struct list { list *next; body *item; };
        struct body { int x; };
        struct tree { tree *left; tree *right; list *items; };

        void Traverse(tree *t) {
            if (t == null) { return; }
            else { Traverse(t->left); Traverse(t->right); }
        }

        void Walk(list *l) {
            while (l) { visit(l); l = l->next; }
        }

        void WalkAndTraverse(list *l, tree *t) {
            while (l) {
                futurecall Traverse(t);
                l = l->next;
            }
        }

        void TraverseAndWalk(tree *t) {
            if (t == null) { return; }
            else {
                futurecall TraverseAndWalk(t->left);
                futurecall TraverseAndWalk(t->right);
                Walk(t->items);
            }
        }
    "#;

    #[test]
    fn figure5_walk_and_traverse_bottleneck() {
        let s = sel(FIG5);
        // `t` is the same for every parallel iteration: Traverse's
        // migration on `t` would serialize at the tree root — demoted.
        let trav = s.recursion_of("Traverse").unwrap();
        assert!(trav.bottleneck);
        assert_eq!(trav.mech("t"), Mech::Cache);
    }

    #[test]
    fn figure5_traverse_and_walk_no_bottleneck() {
        let s = sel(FIG5);
        // `t->items` differs at every node: Walk keeps its pass-1 choice
        // (caching at 70 %, but *not* marked as a bottleneck).
        let walk = &s.for_func("Walk")[0];
        assert!(!walk.bottleneck);
        // And the recursion of TraverseAndWalk itself migrates (parallel).
        let rec = s.recursion_of("TraverseAndWalk").unwrap();
        assert_eq!(rec.migration_var(), Some("t"));
        assert!(!rec.bottleneck);
    }

    #[test]
    fn bottleneck_demotion_requires_parallel_parent() {
        // Same shape as WalkAndTraverse but without futures: no demotion.
        let s = sel(r#"
            struct list { list *next; };
            struct tree { tree *left; tree *right; };
            void Traverse(tree *t) {
                if (t == null) { return; }
                else { Traverse(t->left); Traverse(t->right); }
            }
            void serial(list *l, tree *t) {
                while (l) { Traverse(t); l = l->next; }
            }
        "#);
        let trav = s.recursion_of("Traverse").unwrap();
        assert!(!trav.bottleneck);
        assert_eq!(trav.mech("t"), Mech::Migrate);
    }

    #[test]
    fn describe_mentions_every_loop() {
        let s = sel(FIG5);
        let d = s.describe();
        assert!(d.contains("Traverse"));
        assert!(d.contains("Walk"));
        assert!(d.contains("bottleneck"));
    }

    #[test]
    fn figure3_selection() {
        let s = sel(r#"
            struct node { node *left @ 90; node *right @ 70; };
            void f(node *s, node *t, node *u) {
                while (s) {
                    s = s->left;
                    t = t->right->left;
                    u = s->right;
                }
            }
        "#);
        let c = &s.for_func("f")[0];
        // s (90 %) beats t (63 %): s migrates at the threshold, t and u cache.
        assert_eq!(c.migration_var(), Some("s"));
        assert_eq!(c.mech("t"), Mech::Cache);
        assert_eq!(c.mech("u"), Mech::Cache);
    }
}
