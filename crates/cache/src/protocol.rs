//! The three coherence schemes of Appendix A, behind one interface.
//!
//! All three are correct because Olden reduces to release consistency: a
//! migration *send* releases, a migration *receipt* acquires, and the
//! future semantics guarantee concurrent threads never read each other's
//! in-flight writes. The schemes differ only in what bookkeeping they pay
//! and when cached lines become invalid:
//!
//! | scheme    | on heap write                   | on migration depart            | on migration arrive            |
//! |-----------|---------------------------------|--------------------------------|--------------------------------|
//! | local     | –                               | –                              | clear whole cache (returns: only written homes) |
//! | global    | record dirty line (7/23 instrs) | push invalidations to sharers  | –                              |
//! | bilateral | record dirty line (7/23 instrs) | bump written pages' timestamps | mark all pages for revalidation |

use crate::stats::CacheStats;
use crate::table::ProcCache;
use olden_gptr::{LineInPage, PageNum, ProcId, LINES_PER_PAGE};
use std::collections::HashMap;

/// Which Appendix-A coherence scheme is in force.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Protocol {
    /// Invalidate the whole local cache on every migration receipt; on
    /// returns, only pages homed on processors the thread wrote.
    LocalKnowledge,
    /// Eager release consistency: track writes per line, sharers per page;
    /// push invalidations at each migration departure.
    GlobalKnowledge,
    /// Per-page timestamps at home + epoch marks at receivers; first
    /// access after an acquire revalidates.
    Bilateral,
}

impl Protocol {
    pub const ALL: [Protocol; 3] = [
        Protocol::LocalKnowledge,
        Protocol::GlobalKnowledge,
        Protocol::Bilateral,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Protocol::LocalKnowledge => "local",
            Protocol::GlobalKnowledge => "global",
            Protocol::Bilateral => "bilateral",
        }
    }

    /// Inverse of [`Protocol::name`] — the CLI flag and wire spellings.
    pub fn from_name(s: &str) -> Option<Protocol> {
        match s {
            "local" => Some(Protocol::LocalKnowledge),
            "global" => Some(Protocol::GlobalKnowledge),
            "bilateral" => Some(Protocol::Bilateral),
            _ => None,
        }
    }
}

/// Outcome of a remote cacheable access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// Line present and valid: serviced locally.
    Hit,
    /// Round trip to the home node. `revalidation` is true when the trip
    /// only refreshed a timestamp and the line itself was still valid
    /// (bilateral), so no 64-byte payload moved.
    Miss { revalidation: bool },
}

/// How a thread arrived at a processor (migration receipt = acquire).
#[derive(Clone, Copy, Debug)]
pub enum Arrival<'a> {
    /// Forward migration into a procedure body.
    Call,
    /// Return-stub migration; `written_homes` are the processors whose
    /// memories the returning thread wrote (the §3 refinement: only their
    /// lines can be stale for this thread).
    Return { written_homes: &'a [ProcId] },
}

/// Home-side metadata for one page. Public so the distributed backends
/// (olden-exec workers, and through them olden-net) keep byte-identical
/// directory state to the simulator's.
#[derive(Clone, Debug, Default)]
pub struct HomePage {
    /// Processors that have requested lines of this page (page-granularity
    /// sharer tracking, Appendix A).
    pub sharers: Vec<ProcId>,
    /// Bilateral: current timestamp; bumped at migration departure if the
    /// page was written during the epoch.
    pub ts: u64,
    /// Bilateral: timestamp at which each line was last written (the value
    /// the page's `ts` will take at the *next* departure).
    pub line_ts: [u64; LINES_PER_PAGE],
}

impl HomePage {
    /// Bilateral revalidation: the mask of lines written since the
    /// requester last validated against this page.
    pub fn stale_mask(&self, validated_ts: u64) -> u32 {
        let mut mask = 0u32;
        for l in 0..LINES_PER_PAGE {
            if self.line_ts[l] > validated_ts {
                mask |= 1 << l;
            }
        }
        mask
    }
}

/// Instruction costs of the compiler-inserted write-tracking code
/// (Appendix A: "seven instructions for non-shared pages, and twenty-three
/// instructions for shared pages"). Public so the distributed backends
/// charge the same cycles at their home workers.
pub const TRACK_NONSHARED: u64 = 7;
pub const TRACK_SHARED: u64 = 23;

/// All caches plus the home directories, under one protocol.
#[derive(Clone, Debug)]
pub struct CacheSystem {
    protocol: Protocol,
    caches: Vec<ProcCache>,
    homes: Vec<HashMap<PageNum, HomePage>>,
    /// Lines written by the current thread since its last migration
    /// departure: (home, page) → line mask. Cleared at each departure.
    dirty: HashMap<(ProcId, PageNum), u32>,
    stats: CacheStats,
}

impl CacheSystem {
    pub fn new(procs: usize, protocol: Protocol) -> CacheSystem {
        CacheSystem {
            protocol,
            caches: (0..procs).map(|_| ProcCache::new()).collect(),
            homes: (0..procs).map(|_| HashMap::new()).collect(),
            dirty: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Total distinct pages ever cached, across all processors (Table 3
    /// "Total Pages Cached").
    pub fn pages_cached(&self) -> u64 {
        self.caches.iter().map(|c| c.pages_ever()).sum()
    }

    /// Mean translation-table chain length across processors (§3.2 claims
    /// ≈ 1).
    pub fn mean_chain_length(&self) -> f64 {
        let with_lookups: Vec<f64> = self
            .caches
            .iter()
            .map(|c| c.mean_chain_length())
            .filter(|&m| m > 0.0)
            .collect();
        if with_lookups.is_empty() {
            0.0
        } else {
            with_lookups.iter().sum::<f64>() / with_lookups.len() as f64
        }
    }

    /// A remote cacheable reference by `requester` to a word on
    /// `home`/`page`/`line`. Decides hit or miss, updates sharer and valid
    /// state, and records statistics. The caller charges cycle costs based
    /// on the returned [`Access`], and must separately call
    /// [`CacheSystem::note_write`] for every heap write (this one
    /// included) — write tracking is a compiler-inserted instrumentation
    /// on the write itself, independent of how the address was resolved.
    pub fn access(
        &mut self,
        requester: ProcId,
        home: ProcId,
        page: PageNum,
        line: LineInPage,
        write: bool,
    ) -> Access {
        debug_assert_ne!(requester, home, "local references bypass the cache");
        if write {
            self.stats.remote_writes += 1;
        } else {
            self.stats.remote_reads += 1;
        }

        let bilateral = self.protocol == Protocol::Bilateral;
        let cache = &mut self.caches[requester as usize];
        let mut reval_needed = false;
        let mut validated_ts = 0;
        let (mut present, mut valid) = (false, false);
        if let Some(cp) = cache.lookup(home, page) {
            present = true;
            valid = cp.line_valid(line);
            if bilateral && cp.marked {
                reval_needed = true;
                validated_ts = cp.validated_ts;
            }
        }

        // Bilateral revalidation: consult the home's timestamp, drop lines
        // written since we last validated, then re-examine our line.
        if reval_needed {
            let (ts, stale_mask) = {
                let hp = self.homes[home as usize].entry(page).or_default();
                (hp.ts, hp.stale_mask(validated_ts))
            };
            let cache = &mut self.caches[requester as usize];
            if let Some(cp) = cache.lookup(home, page) {
                cp.clear_lines(stale_mask);
                cp.marked = false;
                cp.validated_ts = ts;
                valid = cp.line_valid(line);
            }
            // The round trip happened whether or not the line survived.
            self.stats.misses += 1;
            if valid {
                self.stats.revalidations += 1;
                return Access::Miss { revalidation: true };
            }
            // Stale: fall through to fetch the line (combined with the
            // revalidation reply, so one round trip total is charged).
            self.fetch_line(requester, home, page, line);
            return Access::Miss {
                revalidation: false,
            };
        }

        if present && valid {
            self.stats.hits += 1;
            return Access::Hit;
        }

        // Page not allocated or line invalid: the library routine performs
        // the allocation / transfer (§3.2).
        self.stats.misses += 1;
        self.fetch_line(requester, home, page, line);
        Access::Miss {
            revalidation: false,
        }
    }

    /// Service a line fetch: allocate the page descriptor on demand, set
    /// the valid bit, and register the requester as a sharer at home.
    /// The install probe walks the translation chain exactly once
    /// (`ProcCache::ensure`); a `match lookup { Some => lookup again }`
    /// here used to double-count `lookups`/`probes` and skew the
    /// mean-chain-length claim.
    fn fetch_line(&mut self, requester: ProcId, home: ProcId, page: PageNum, line: LineInPage) {
        let ts = if self.protocol != Protocol::LocalKnowledge {
            // Sharer tracking at page level (Appendix A); the local scheme
            // keeps no global state at all.
            let hp = self.homes[home as usize].entry(page).or_default();
            if !hp.sharers.contains(&requester) {
                hp.sharers.push(requester);
            }
            hp.ts
        } else {
            0
        };
        let cp = self.caches[requester as usize].ensure(home, page);
        cp.set_line(line);
        if self.protocol == Protocol::Bilateral && cp.validated_ts < ts {
            cp.validated_ts = ts;
        }
    }

    /// [`CacheSystem::access`] with the optimizer's verdict attached.
    ///
    /// `elide` means a must-availability fact says this processor checked
    /// the same object earlier on every path and nothing has invalidated
    /// the line since. The fact is treated as a *verified hint*: the fast
    /// path peeks at the descriptor without counting a table lookup and
    /// only takes effect when the line really is resident and valid —
    /// anything else (stale hint, epoch-marked page) falls back to the
    /// byte-exact ordinary path. Hits/misses therefore never change; only
    /// where the probe count lands (`checks_elided` vs
    /// `checks_performed`) does.
    ///
    /// Under [`Protocol::Bilateral`] elision is refused outright: epoch
    /// marks are set at every acquire behind the static analysis's back,
    /// and a marked page *must* take the revalidation round trip.
    pub fn access_checked(
        &mut self,
        requester: ProcId,
        home: ProcId,
        page: PageNum,
        line: LineInPage,
        write: bool,
        elide: bool,
    ) -> Access {
        if elide && self.protocol != Protocol::Bilateral {
            let resident = self.caches[requester as usize]
                .peek(home, page)
                .is_some_and(|cp| cp.line_valid(line) && !cp.marked);
            if resident {
                if write {
                    self.stats.remote_writes += 1;
                } else {
                    self.stats.remote_reads += 1;
                }
                self.stats.hits += 1;
                self.stats.checks_elided += 1;
                return Access::Hit;
            }
        }
        self.stats.checks_performed += 1;
        self.access(requester, home, page, line, write)
    }

    /// Record a heap write for the write-tracking protocols. Called for
    /// *every* heap write (local, migrated-to, or cached-remote) — the
    /// compiler cannot tell which at the write site, which is exactly why
    /// the tracking overhead is pervasive. Returns the cycles the inserted
    /// tracking code costs (zero under local knowledge).
    pub fn note_write(
        &mut self,
        _writer: ProcId,
        home: ProcId,
        page: PageNum,
        line: LineInPage,
    ) -> u64 {
        if self.protocol == Protocol::LocalKnowledge {
            return 0;
        }
        *self.dirty.entry((home, page)).or_insert(0) |= 1u32 << line;
        if self.protocol == Protocol::Bilateral {
            let hp = self.homes[home as usize].entry(page).or_default();
            hp.line_ts[line as usize] = hp.ts + 1;
        }
        let shared = self.homes[home as usize]
            .get(&page)
            .is_some_and(|hp| !hp.sharers.is_empty());
        let cycles = if shared {
            TRACK_SHARED
        } else {
            TRACK_NONSHARED
        };
        self.stats.write_track_cycles += cycles;
        cycles
    }

    /// A migration is leaving `from` (a release). Returns the cycle cost
    /// of any invalidation traffic generated (global scheme).
    pub fn depart(&mut self, from: ProcId, msg_cost: u64) -> u64 {
        match self.protocol {
            Protocol::LocalKnowledge => 0,
            Protocol::GlobalKnowledge => {
                let dirty = std::mem::take(&mut self.dirty);
                let mut cost = 0;
                for ((home, page), mask) in dirty {
                    let sharers = self.homes[home as usize]
                        .get(&page)
                        .map(|hp| hp.sharers.clone())
                        .unwrap_or_default();
                    for s in sharers {
                        if s == from {
                            continue; // the writer's own copy is current
                        }
                        self.stats.invalidations_sent += 1;
                        cost += msg_cost;
                        if !self.caches[s as usize].invalidate_lines(home, page, mask) {
                            self.stats.invalidations_spurious += 1;
                        }
                    }
                }
                cost
            }
            Protocol::Bilateral => {
                let dirty = std::mem::take(&mut self.dirty);
                for ((home, page), _mask) in dirty {
                    let hp = self.homes[home as usize].entry(page).or_default();
                    hp.ts += 1;
                }
                0
            }
        }
    }

    /// A migration arrived at `to` (an acquire).
    pub fn arrive(&mut self, to: ProcId, arrival: Arrival<'_>) {
        match self.protocol {
            Protocol::LocalKnowledge => match arrival {
                Arrival::Call => self.caches[to as usize].clear_all(),
                Arrival::Return { written_homes } => {
                    self.caches[to as usize].clear_homes(written_homes)
                }
            },
            Protocol::GlobalKnowledge => {
                // Invalidations were pushed eagerly at departure.
            }
            Protocol::Bilateral => self.caches[to as usize].mark_all(),
        }
    }

    /// Direct read-only view of one processor's cache (tests, reporting).
    pub fn cache(&self, proc: ProcId) -> &ProcCache {
        &self.caches[proc as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(p: Protocol) -> CacheSystem {
        CacheSystem::new(4, p)
    }

    #[test]
    fn first_access_misses_then_hits() {
        for p in Protocol::ALL {
            let mut s = sys(p);
            assert_eq!(
                s.access(0, 1, 5, 2, false),
                Access::Miss {
                    revalidation: false
                },
                "{:?}",
                p
            );
            assert_eq!(s.access(0, 1, 5, 2, false), Access::Hit, "{:?}", p);
            assert_eq!(s.stats().misses, 1);
            assert_eq!(s.stats().hits, 1);
        }
    }

    #[test]
    fn line_granularity_within_page() {
        let mut s = sys(Protocol::LocalKnowledge);
        s.access(0, 1, 5, 2, false);
        // Different line, same page: page allocated but line invalid.
        assert_eq!(
            s.access(0, 1, 5, 3, false),
            Access::Miss {
                revalidation: false
            }
        );
        assert_eq!(s.cache(0).pages_ever(), 1, "page allocated once");
    }

    /// Two consecutive word addresses straddling a 2 KB page boundary
    /// (word 255 → page 0 line 31; word 256 → page 1 line 0) are distinct
    /// cache units under every protocol: each misses on first touch,
    /// allocates its own page descriptor, and hits independently.
    #[test]
    fn page_straddling_accesses_are_independent_units() {
        use olden_gptr::geometry::{line_in_page_of_word, page_of_word};
        let words = [255u64, 256u64];
        for p in Protocol::ALL {
            let mut s = sys(p);
            for &w in &words {
                assert_eq!(
                    s.access(0, 1, page_of_word(w), line_in_page_of_word(w), false),
                    Access::Miss {
                        revalidation: false
                    },
                    "{p:?} word {w}: first touch of its own line"
                );
            }
            for &w in &words {
                assert_eq!(
                    s.access(0, 1, page_of_word(w), line_in_page_of_word(w), false),
                    Access::Hit,
                    "{p:?} word {w}"
                );
            }
            assert_eq!(
                s.cache(0).pages_ever(),
                2,
                "{p:?}: the straddle spans two descriptors"
            );
        }
    }

    #[test]
    fn local_call_arrival_clears_everything() {
        let mut s = sys(Protocol::LocalKnowledge);
        s.access(0, 1, 5, 2, false);
        s.arrive(0, Arrival::Call);
        assert_eq!(
            s.access(0, 1, 5, 2, false),
            Access::Miss {
                revalidation: false
            }
        );
    }

    #[test]
    fn local_return_arrival_is_selective() {
        let mut s = sys(Protocol::LocalKnowledge);
        s.access(0, 1, 5, 2, false); // page homed on 1
        s.access(0, 2, 9, 0, false); // page homed on 2
                                     // Thread returns having written only processor 2's memory.
        s.arrive(
            0,
            Arrival::Return {
                written_homes: &[2],
            },
        );
        assert_eq!(s.access(0, 1, 5, 2, false), Access::Hit);
        assert_eq!(
            s.access(0, 2, 9, 0, false),
            Access::Miss {
                revalidation: false
            }
        );
    }

    #[test]
    fn global_pushes_invalidations_to_sharers() {
        let mut s = sys(Protocol::GlobalKnowledge);
        // Proc 0 caches line (1, page 5, line 2).
        s.access(0, 1, 5, 2, false);
        // Proc 2 migrates somewhere and writes that line remotely (cached
        // write): dirty tracking records it.
        s.access(2, 1, 5, 2, true);
        s.note_write(2, 1, 5, 2);
        // Departure of proc 2's thread pushes invalidations.
        let cost = s.depart(2, 100);
        assert!(cost >= 100, "at least one invalidation message");
        assert!(s.stats().invalidations_sent >= 1);
        // Proc 0's copy is gone; proc 2's own copy survived.
        assert_eq!(
            s.access(0, 1, 5, 2, false),
            Access::Miss {
                revalidation: false
            }
        );
        assert_eq!(s.access(2, 1, 5, 2, false), Access::Hit);
    }

    #[test]
    fn global_arrival_is_free() {
        let mut s = sys(Protocol::GlobalKnowledge);
        s.access(0, 1, 5, 2, false);
        s.arrive(0, Arrival::Call);
        assert_eq!(s.access(0, 1, 5, 2, false), Access::Hit);
    }

    #[test]
    fn bilateral_marked_page_revalidates_and_survives_if_clean() {
        let mut s = sys(Protocol::Bilateral);
        s.access(0, 1, 5, 2, false);
        s.arrive(0, Arrival::Call); // marks all pages
                                    // Nothing was written: revalidation round trip, line survives.
        assert_eq!(
            s.access(0, 1, 5, 2, false),
            Access::Miss { revalidation: true }
        );
        assert_eq!(s.stats().revalidations, 1);
        // Unmarked now: plain hit.
        assert_eq!(s.access(0, 1, 5, 2, false), Access::Hit);
    }

    #[test]
    fn bilateral_invalidates_written_lines_on_revalidation() {
        let mut s = sys(Protocol::Bilateral);
        s.access(0, 1, 5, 2, false);
        s.access(0, 1, 5, 3, false);
        // Another thread (on proc 3) writes line 2 and departs: ts bump.
        s.access(3, 1, 5, 2, true);
        s.note_write(3, 1, 5, 2);
        s.depart(3, 100);
        s.arrive(0, Arrival::Call);
        // Line 2 was written since validation: full miss.
        assert_eq!(
            s.access(0, 1, 5, 2, false),
            Access::Miss {
                revalidation: false
            }
        );
        // Line 3 was not written; it survived the same revalidation and
        // the page is unmarked, so this is a hit.
        assert_eq!(s.access(0, 1, 5, 3, false), Access::Hit);
    }

    #[test]
    fn write_tracking_costs_seven_or_twentythree() {
        let mut s = sys(Protocol::GlobalKnowledge);
        // Page with no sharers yet: 7 instructions.
        assert_eq!(s.note_write(0, 0, 77, 0), 7);
        // Make page (1,5) shared, then write it: 23 instructions.
        s.access(0, 1, 5, 2, false);
        assert_eq!(s.note_write(1, 1, 5, 2), 23);
        // Local scheme pays nothing.
        let mut l = sys(Protocol::LocalKnowledge);
        assert_eq!(l.note_write(0, 1, 5, 2), 0);
        assert_eq!(l.stats().write_track_cycles, 0);
    }

    #[test]
    fn write_allocate_counts_as_miss_then_write_hits() {
        let mut s = sys(Protocol::LocalKnowledge);
        assert_eq!(
            s.access(0, 1, 5, 2, true),
            Access::Miss {
                revalidation: false
            }
        );
        assert_eq!(s.access(0, 1, 5, 2, true), Access::Hit);
        assert_eq!(s.stats().remote_writes, 2);
        assert_eq!(s.stats().remote_reads, 0);
    }

    #[test]
    fn pages_cached_sums_across_processors() {
        let mut s = sys(Protocol::LocalKnowledge);
        s.access(0, 1, 5, 2, false);
        s.access(2, 1, 5, 2, false);
        s.access(2, 3, 8, 0, false);
        assert_eq!(s.pages_cached(), 3);
    }

    /// Regression for the `fetch_line` double lookup: a miss must cost
    /// exactly two counted lookups (the access probe + the single install
    /// probe) and a hit exactly one, under every protocol. The old code
    /// probed up to twice more on the install path, inflating `lookups`/
    /// `probes` and with them `mean_probes_per_lookup`.
    #[test]
    fn miss_path_counts_exactly_two_lookups() {
        for p in Protocol::ALL {
            let mut s = sys(p);
            s.access(0, 1, 5, 2, false); // miss: access probe + install probe
            assert_eq!(s.cache(0).lookups(), 2, "{p:?} miss path");
            s.access(0, 1, 5, 2, false); // hit: one probe
            assert_eq!(s.cache(0).lookups(), 3, "{p:?} hit path");
            // Empty-chain walks cost zero probes; only the hit's
            // first-position find costs one.
            assert_eq!(s.cache(0).probes(), 1, "{p:?} probes");
        }
    }

    #[test]
    fn access_checked_elides_only_verified_hits() {
        let mut s = sys(Protocol::LocalKnowledge);
        // Stale hint on a cold cache: falls back, full miss, counted as
        // performed.
        assert_eq!(
            s.access_checked(0, 1, 5, 2, false, true),
            Access::Miss {
                revalidation: false
            }
        );
        assert_eq!(s.stats().checks_performed, 1);
        assert_eq!(s.stats().checks_elided, 0);
        let lookups = s.cache(0).lookups();
        // Verified hint: hit without touching the hash table.
        assert_eq!(s.access_checked(0, 1, 5, 2, false, true), Access::Hit);
        assert_eq!(s.stats().checks_elided, 1);
        assert_eq!(s.cache(0).lookups(), lookups, "no probe on the fast path");
        // Perform path still counts normally.
        assert_eq!(s.access_checked(0, 1, 5, 2, false, false), Access::Hit);
        assert_eq!(s.stats().checks_performed, 2);
        assert_eq!(s.cache(0).lookups(), lookups + 1);
        // Hits/misses are indistinguishable from the unchecked path.
        assert_eq!(s.stats().hits, 2);
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn bilateral_refuses_elision() {
        let mut s = sys(Protocol::Bilateral);
        s.access(0, 1, 5, 2, false);
        s.arrive(0, Arrival::Call); // marks the page: must revalidate
        assert_eq!(
            s.access_checked(0, 1, 5, 2, false, true),
            Access::Miss { revalidation: true },
            "marked page takes the round trip even under an elide hint"
        );
        assert_eq!(s.stats().checks_elided, 0);
        assert_eq!(s.stats().checks_performed, 1);
    }

    #[test]
    fn bilateral_depart_without_writes_keeps_ts() {
        let mut s = sys(Protocol::Bilateral);
        s.access(0, 1, 5, 2, false);
        s.depart(2, 100); // no writes: no ts bump anywhere
        s.arrive(0, Arrival::Call);
        assert_eq!(
            s.access(0, 1, 5, 2, false),
            Access::Miss { revalidation: true }
        );
    }
}
