//! Olden's software cache and its coherence protocols.
//!
//! Each processor uses its local memory as a large, fully associative,
//! write-through cache (paper §3.2, after Blizzard-S). Allocation happens
//! at page granularity (2 KB) and transfer at line granularity (64 B).
//! Because the CM-5 port could not rely on virtual-memory support, the
//! translation structure is a **1 K-bucket hash table with a list of pages
//! in each bucket** (Figure 1); chains average about one entry.
//!
//! Three coherence schemes are implemented (Appendix A), all of which
//! realize release consistency by treating a migration send as a release
//! and a migration receipt as an acquire:
//!
//! * **local knowledge** — invalidate the entire local cache on every
//!   migration receipt; on *return* migrations only pages homed on
//!   processors the returning thread wrote are dropped;
//! * **global knowledge** (eager release consistency) — writes are tracked
//!   per line, sharers per page; each migration departure pushes
//!   invalidations to sharers;
//! * **bilateral** — homes keep per-page timestamps bumped at migration
//!   departure if the page was written; receivers mark all cached pages so
//!   the first access revalidates against the home timestamp.
//!
//! The cache stores *metadata only* (valid bits, marks, timestamps):
//! because the protocol is write-through and Olden's future semantics
//! forbid concurrent threads from interfering, the home copy is always
//! current in the simulator's serial order, so values are read from home
//! while the metadata decides hit or miss and who pays what.

pub mod protocol;
pub mod stats;
pub mod table;

pub use protocol::{
    Access, Arrival, CacheSystem, HomePage, Protocol, TRACK_NONSHARED, TRACK_SHARED,
};
pub use stats::CacheStats;
pub use table::{CachedPage, ProcCache, HASH_BUCKETS};
