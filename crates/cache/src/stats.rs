//! Caching statistics in the shape of the paper's Table 3.

/// Counters accumulated over one benchmark run.
///
/// "Cacheable" references are dereferences the heuristic assigned to the
/// caching mechanism — local or remote (the runtime counts these, since a
/// local cacheable reference never consults the cache). "Remote" ones are
/// the subset whose pointer named another processor; those hit or miss in
/// the software cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cacheable reads, local + remote (Table 3 "Cacheable Reads").
    pub cacheable_reads: u64,
    /// Cacheable writes, local + remote (Table 3 "Cachable Writes").
    pub cacheable_writes: u64,
    /// Remote cacheable reads.
    pub remote_reads: u64,
    /// Remote cacheable writes.
    pub remote_writes: u64,
    /// Remote references satisfied from the local cache.
    pub hits: u64,
    /// Remote references that required a line transfer (or, under the
    /// bilateral scheme, a revalidation round trip).
    pub misses: u64,
    /// Bilateral only: misses that were revalidations of a still-valid
    /// line (control round trip, no line payload).
    pub revalidations: u64,
    /// Global scheme: invalidation messages pushed to sharers.
    pub invalidations_sent: u64,
    /// Global scheme: invalidations that actually found the page cached
    /// (the remainder are the "spurious invalidation messages" of App. A).
    pub invalidations_spurious: u64,
    /// Global/bilateral: cycles spent in the compiler-inserted
    /// write-tracking code (7 instructions non-shared, 23 shared).
    pub write_track_cycles: u64,
    /// Remote cacheable accesses that took the full check (hash probe)
    /// path — including elision hints that turned out stale and fell
    /// back. Only incremented through `access_checked`.
    pub checks_performed: u64,
    /// Remote cacheable accesses whose check the optimizer elided and
    /// whose fact verified, skipping the hash probe entirely.
    pub checks_elided: u64,
}

impl CacheStats {
    /// Fraction of remote references that missed (Table 3 "% of Remote
    /// references that miss").
    pub fn miss_pct(&self) -> f64 {
        let remote = self.remote_reads + self.remote_writes;
        if remote == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / remote as f64
        }
    }

    /// Fraction of cacheable reads that were remote (Table 3 "% Remote").
    pub fn read_remote_pct(&self) -> f64 {
        if self.cacheable_reads == 0 {
            0.0
        } else {
            100.0 * self.remote_reads as f64 / self.cacheable_reads as f64
        }
    }

    /// Fraction of cacheable writes that were remote.
    pub fn write_remote_pct(&self) -> f64 {
        if self.cacheable_writes == 0 {
            0.0
        } else {
            100.0 * self.remote_writes as f64 / self.cacheable_writes as f64
        }
    }

    /// Every counter as a `(stable_name, value)` list — the shape a
    /// metrics registry or a bench-JSON emitter ingests. Names are part
    /// of the `BENCH_*.json` schema; do not rename.
    pub fn counters(&self) -> [(&'static str, u64); 12] {
        [
            ("cacheable_reads", self.cacheable_reads),
            ("cacheable_writes", self.cacheable_writes),
            ("remote_reads", self.remote_reads),
            ("remote_writes", self.remote_writes),
            ("hits", self.hits),
            ("misses", self.misses),
            ("revalidations", self.revalidations),
            ("invalidations_sent", self.invalidations_sent),
            ("invalidations_spurious", self.invalidations_spurious),
            ("write_track_cycles", self.write_track_cycles),
            ("checks_performed", self.checks_performed),
            ("checks_elided", self.checks_elided),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        let s = CacheStats {
            cacheable_reads: 200,
            cacheable_writes: 50,
            remote_reads: 20,
            remote_writes: 5,
            hits: 20,
            misses: 5,
            ..Default::default()
        };
        assert!((s.miss_pct() - 20.0).abs() < 1e-9);
        assert!((s.read_remote_pct() - 10.0).abs() < 1e-9);
        assert!((s.write_remote_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn counters_cover_every_field() {
        let s = CacheStats {
            cacheable_reads: 1,
            cacheable_writes: 2,
            remote_reads: 3,
            remote_writes: 4,
            hits: 5,
            misses: 6,
            revalidations: 7,
            invalidations_sent: 8,
            invalidations_spurious: 9,
            write_track_cycles: 10,
            checks_performed: 11,
            checks_elided: 12,
        };
        let c = s.counters();
        // One entry per struct field, values in declaration order.
        assert_eq!(c.len(), 12);
        assert_eq!(c.iter().map(|(_, v)| *v).sum::<u64>(), (1..=12).sum());
        assert!(c.iter().any(|&(n, v)| n == "misses" && v == 6));
    }

    #[test]
    fn empty_stats_are_zero_pct() {
        let s = CacheStats::default();
        assert_eq!(s.miss_pct(), 0.0);
        assert_eq!(s.read_remote_pct(), 0.0);
        assert_eq!(s.write_remote_pct(), 0.0);
    }
}
