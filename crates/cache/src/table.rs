//! The per-processor translation table of Figure 1.
//!
//! A 1 K-bucket hash table; each bucket holds a list of cached-page
//! descriptors. A descriptor records the page's identity (home processor +
//! page number — together the "tag" that also translates the global address
//! to a local one), one valid bit per 64-byte line, and the bookkeeping the
//! bilateral protocol needs (an epoch mark and the timestamp at which the
//! page was last validated against its home).

use olden_gptr::{LineInPage, PageNum, ProcId, LINES_PER_PAGE};

/// Bucket count of the translation table (paper Figure 1: "1024 hash
/// buckets", described in §3.2 as "a 1K hash table").
pub const HASH_BUCKETS: usize = 1024;

/// Descriptor of one remotely homed page held in a processor's cache.
#[derive(Clone, Copy, Debug)]
pub struct CachedPage {
    /// Home processor of the page.
    pub home: ProcId,
    /// Page number within the home's heap section.
    pub page: PageNum,
    /// One valid bit per line (32 lines per 2 KB page).
    pub valid: u32,
    /// Bilateral protocol: set on migration receipt; the next access must
    /// revalidate against the home's timestamp.
    pub marked: bool,
    /// Bilateral protocol: home timestamp at the last revalidation.
    pub validated_ts: u64,
}

impl CachedPage {
    #[inline]
    pub fn line_valid(&self, line: LineInPage) -> bool {
        debug_assert!((line as usize) < LINES_PER_PAGE);
        self.valid & (1u32 << line) != 0
    }

    #[inline]
    pub fn set_line(&mut self, line: LineInPage) {
        self.valid |= 1u32 << line;
    }

    #[inline]
    pub fn clear_lines(&mut self, mask: u32) {
        self.valid &= !mask;
    }
}

/// One processor's software cache: the hash table plus hit/miss-relevant
/// occupancy statistics.
#[derive(Clone, Debug)]
pub struct ProcCache {
    buckets: Vec<Vec<CachedPage>>,
    /// Distinct pages ever inserted (monotone; Table 3's "Total Pages
    /// Cached" sums this across processors).
    pages_ever: u64,
    /// Pages currently resident.
    resident: usize,
    /// Chain-walk probes performed (for the "average chain length ≈ 1"
    /// claim of §3.2).
    probes: u64,
    lookups: u64,
}

/// Hash of (home, page) into the bucket array: a splitmix64-style mix of
/// the combined key, as cheap as the original's shift-and-mask while
/// spreading distinct homes and nearby page numbers.
#[inline]
fn bucket_of(home: ProcId, page: PageNum) -> usize {
    let mut z = ((page << 8) | home as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize & (HASH_BUCKETS - 1)
}

impl ProcCache {
    pub fn new() -> ProcCache {
        ProcCache {
            buckets: vec![Vec::new(); HASH_BUCKETS],
            pages_ever: 0,
            resident: 0,
            probes: 0,
            lookups: 0,
        }
    }

    /// Find the descriptor for `(home, page)`, walking the bucket chain.
    pub fn lookup(&mut self, home: ProcId, page: PageNum) -> Option<&mut CachedPage> {
        self.lookups += 1;
        let b = bucket_of(home, page);
        let chain = &mut self.buckets[b];
        for (i, cp) in chain.iter().enumerate() {
            if cp.home == home && cp.page == page {
                self.probes += (i + 1) as u64;
                return Some(&mut chain[i]);
            }
        }
        self.probes += chain.len() as u64;
        None
    }

    /// Read-only probe without statistics (used by invalidation paths).
    fn find_mut(&mut self, home: ProcId, page: PageNum) -> Option<&mut CachedPage> {
        let b = bucket_of(home, page);
        self.buckets[b]
            .iter_mut()
            .find(|cp| cp.home == home && cp.page == page)
    }

    /// Uncounted shared probe: the optimizer's elision fast path verifies
    /// its static fact against the live descriptor without charging a
    /// lookup — skipping exactly this bookkeeping is the point of eliding.
    pub fn peek(&self, home: ProcId, page: PageNum) -> Option<&CachedPage> {
        let b = bucket_of(home, page);
        self.buckets[b]
            .iter()
            .find(|cp| cp.home == home && cp.page == page)
    }

    /// Find-or-insert with a *single* counted probe: the miss-service
    /// library routine walks the chain once, installing the descriptor at
    /// the end if the walk came up empty.
    pub fn ensure(&mut self, home: ProcId, page: PageNum) -> &mut CachedPage {
        self.lookups += 1;
        let b = bucket_of(home, page);
        let chain = &mut self.buckets[b];
        match chain
            .iter()
            .position(|cp| cp.home == home && cp.page == page)
        {
            Some(i) => {
                self.probes += (i + 1) as u64;
                &mut chain[i]
            }
            None => {
                self.probes += chain.len() as u64;
                self.pages_ever += 1;
                self.resident += 1;
                chain.push(CachedPage {
                    home,
                    page,
                    valid: 0,
                    marked: false,
                    validated_ts: 0,
                });
                chain.last_mut().unwrap()
            }
        }
    }

    /// Counted lookups so far (regression surface for the double-count
    /// fix in the miss path).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Chain probes so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Allocate a descriptor for a page on first use (page-granularity
    /// allocation, §3.2). Returns the fresh descriptor with no valid lines.
    pub fn insert(&mut self, home: ProcId, page: PageNum) -> &mut CachedPage {
        let b = bucket_of(home, page);
        self.pages_ever += 1;
        self.resident += 1;
        self.buckets[b].push(CachedPage {
            home,
            page,
            valid: 0,
            marked: false,
            validated_ts: 0,
        });
        self.buckets[b].last_mut().unwrap()
    }

    /// Local-knowledge acquire: drop everything.
    pub fn clear_all(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.resident = 0;
    }

    /// Local-knowledge return refinement: drop only pages homed on the
    /// given processors.
    pub fn clear_homes(&mut self, homes: &[ProcId]) {
        for b in &mut self.buckets {
            let before = b.len();
            b.retain(|cp| !homes.contains(&cp.home));
            self.resident -= before - b.len();
        }
    }

    /// Global-knowledge invalidation: clear specific lines of one page.
    /// Returns true if the page was cached here (a useful, non-spurious
    /// invalidation).
    pub fn invalidate_lines(&mut self, home: ProcId, page: PageNum, mask: u32) -> bool {
        match self.find_mut(home, page) {
            Some(cp) => {
                cp.clear_lines(mask);
                true
            }
            None => false,
        }
    }

    /// Bilateral acquire: mark every cached page so its next access
    /// revalidates (the epoch-bit technique of Darnell et al.).
    pub fn mark_all(&mut self) {
        for b in &mut self.buckets {
            for cp in b.iter_mut() {
                cp.marked = true;
            }
        }
    }

    /// Distinct pages ever cached on this processor.
    pub fn pages_ever(&self) -> u64 {
        self.pages_ever
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Mean probes per lookup — §3.2 claims this stays ≈ 1.
    pub fn mean_chain_length(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.probes as f64 / self.lookups as f64
        }
    }
}

impl Default for ProcCache {
    fn default() -> Self {
        ProcCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_figure1() {
        assert_eq!(HASH_BUCKETS, 1024);
        assert_eq!(LINES_PER_PAGE, 32); // one u32 of valid bits per page
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut c = ProcCache::new();
        assert!(c.lookup(3, 7).is_none());
        let cp = c.insert(3, 7);
        assert!(!cp.line_valid(0));
        cp.set_line(5);
        let cp = c.lookup(3, 7).expect("resident after insert");
        assert!(cp.line_valid(5));
        assert!(!cp.line_valid(4));
        assert_eq!(c.resident(), 1);
        assert_eq!(c.pages_ever(), 1);
    }

    #[test]
    fn distinct_homes_same_page_number_do_not_collide_logically() {
        let mut c = ProcCache::new();
        c.insert(1, 42).set_line(0);
        c.insert(2, 42).set_line(1);
        assert!(c.lookup(1, 42).unwrap().line_valid(0));
        assert!(!c.lookup(1, 42).unwrap().line_valid(1));
        assert!(c.lookup(2, 42).unwrap().line_valid(1));
    }

    #[test]
    fn clear_all_empties() {
        let mut c = ProcCache::new();
        c.insert(0, 1);
        c.insert(1, 2);
        c.clear_all();
        assert_eq!(c.resident(), 0);
        assert!(c.lookup(0, 1).is_none());
        // pages_ever is monotone.
        assert_eq!(c.pages_ever(), 2);
    }

    #[test]
    fn clear_homes_is_selective() {
        let mut c = ProcCache::new();
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        c.clear_homes(&[1, 3]);
        assert!(c.lookup(1, 10).is_none());
        assert!(c.lookup(2, 20).is_some());
        assert!(c.lookup(3, 30).is_none());
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn invalidate_lines_clears_only_mask() {
        let mut c = ProcCache::new();
        let cp = c.insert(4, 9);
        cp.set_line(0);
        cp.set_line(1);
        cp.set_line(2);
        assert!(c.invalidate_lines(4, 9, 0b010));
        let cp = c.lookup(4, 9).unwrap();
        assert!(cp.line_valid(0));
        assert!(!cp.line_valid(1));
        assert!(cp.line_valid(2));
        // Spurious invalidation of an uncached page reports false.
        assert!(!c.invalidate_lines(4, 99, u32::MAX));
    }

    #[test]
    fn mark_all_sets_epoch_bits() {
        let mut c = ProcCache::new();
        c.insert(0, 1);
        c.insert(5, 2);
        c.mark_all();
        assert!(c.lookup(0, 1).unwrap().marked);
        assert!(c.lookup(5, 2).unwrap().marked);
    }

    #[test]
    fn ensure_counts_one_lookup_insert_or_not() {
        let mut c = ProcCache::new();
        let cp = c.ensure(3, 7);
        cp.set_line(2);
        assert_eq!(c.lookups(), 1, "install path probes once");
        assert_eq!(c.pages_ever(), 1);
        assert!(c.ensure(3, 7).line_valid(2), "found, not re-inserted");
        assert_eq!(c.lookups(), 2);
        assert_eq!(c.pages_ever(), 1);
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn peek_is_uncounted_and_readonly() {
        let mut c = ProcCache::new();
        c.insert(1, 9).set_line(0);
        let (lk, pr) = (c.lookups(), c.probes());
        assert!(c.peek(1, 9).unwrap().line_valid(0));
        assert!(c.peek(1, 10).is_none());
        assert_eq!((c.lookups(), c.probes()), (lk, pr), "peek left counters");
    }

    /// The last line of a page is bit 31 of the valid mask — the u32's
    /// sign bit, the classic shift-arithmetic trap. Setting, testing, and
    /// clearing it must not disturb its neighbors.
    #[test]
    fn line_31_uses_the_sign_bit_safely() {
        let mut c = ProcCache::new();
        let cp = c.ensure(1, 0);
        cp.set_line(31);
        cp.set_line(30);
        assert_eq!(cp.valid, (1u32 << 31) | (1u32 << 30));
        assert!(cp.line_valid(31));
        assert!(cp.line_valid(30));
        assert!(!cp.line_valid(0));
        assert!(c.invalidate_lines(1, 0, 1u32 << 31));
        let cp = c.lookup(1, 0).unwrap();
        assert!(!cp.line_valid(31), "line 31 cleared");
        assert!(cp.line_valid(30), "line 30 untouched");
        // All 32 lines valid is exactly a full mask.
        let cp = c.ensure(1, 1);
        for l in 0..LINES_PER_PAGE {
            cp.set_line(l as LineInPage);
        }
        assert_eq!(cp.valid, u32::MAX);
    }

    /// A deref one word past word 255 lands on a *different page's* line
    /// 0, never on the same page's (nonexistent) line 32: the descriptors
    /// are distinct and each tracks its own valid bits.
    #[test]
    fn page_straddling_words_map_to_distinct_descriptors() {
        use olden_gptr::geometry::{line_in_page_of_word, page_of_word};
        let (last, first) = (255u64, 256u64); // last word of page 0, first of page 1
        assert_eq!(
            (page_of_word(last), line_in_page_of_word(last)),
            (0, 31),
            "word 255 is page 0's last line"
        );
        assert_eq!(
            (page_of_word(first), line_in_page_of_word(first)),
            (1, 0),
            "word 256 starts page 1"
        );
        let mut c = ProcCache::new();
        c.ensure(2, page_of_word(last))
            .set_line(line_in_page_of_word(last));
        c.ensure(2, page_of_word(first))
            .set_line(line_in_page_of_word(first));
        assert_eq!(c.pages_ever(), 2, "straddle allocated two descriptors");
        assert!(c.lookup(2, 0).unwrap().line_valid(31));
        assert!(!c.lookup(2, 0).unwrap().line_valid(0));
        assert!(c.lookup(2, 1).unwrap().line_valid(0));
        assert!(!c.lookup(2, 1).unwrap().line_valid(31));
    }

    /// With more pages than buckets, some chain must hold several
    /// descriptors (pigeonhole). `ensure` walks the full chain before
    /// concluding find-vs-insert: every page keeps its own identity, no
    /// page is ever re-inserted, and the probe counters reflect the walk.
    #[test]
    fn ensure_disambiguates_hash_collisions() {
        let mut c = ProcCache::new();
        let n = HASH_BUCKETS as u64 + 512;
        for p in 0..n {
            c.ensure(1, p).set_line((p % 32) as LineInPage);
        }
        assert_eq!(c.pages_ever(), n);
        assert_eq!(c.resident(), n as usize);
        assert_eq!(c.lookups(), n);
        // Second pass: all finds, no inserts, bits where we left them.
        for p in 0..n {
            let cp = c.ensure(1, p);
            assert_eq!(cp.page, p);
            assert!(cp.line_valid((p % 32) as LineInPage), "page {p}");
            assert!(!cp.line_valid(((p + 1) % 32) as LineInPage), "page {p}");
        }
        assert_eq!(c.pages_ever(), n, "ensure never re-inserts a resident page");
        assert_eq!(c.resident(), n as usize);
        assert_eq!(c.lookups(), 2 * n);
        // A found entry at chain position i costs i+1 probes, so the find
        // pass alone contributes ≥ n — and strictly more than n exactly
        // when some chain held several descriptors, which the pigeonhole
        // guarantees here.
        assert!(
            c.probes() > c.lookups(),
            "with {n} pages in {HASH_BUCKETS} buckets some ensure walked a chain \
             ({} probes over {} lookups)",
            c.probes(),
            c.lookups()
        );
    }

    /// `ensure` right after `clear_all` re-inserts: resident count comes
    /// back, `pages_ever` keeps counting, and the new descriptor is
    /// pristine (no stale valid bits, no stale mark).
    #[test]
    fn ensure_after_clear_reinserts_pristine() {
        let mut c = ProcCache::new();
        let cp = c.ensure(3, 5);
        cp.set_line(4);
        cp.marked = true;
        cp.validated_ts = 9;
        c.clear_all();
        let cp = c.ensure(3, 5);
        assert_eq!(cp.valid, 0, "fresh descriptor has no valid lines");
        assert!(!cp.marked);
        assert_eq!(cp.validated_ts, 0);
        assert_eq!(c.pages_ever(), 2, "monotone across the clear");
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn chain_length_near_one_for_scattered_pages() {
        let mut c = ProcCache::new();
        for p in 0..500u64 {
            c.insert((p % 32) as ProcId, p);
        }
        for p in 0..500u64 {
            assert!(c.lookup((p % 32) as ProcId, p).is_some());
        }
        // ≈1 probe per lookup with 500 pages in 1024 buckets.
        assert!(
            c.mean_chain_length() < 1.6,
            "chain length {}",
            c.mean_chain_length()
        );
    }
}
