//! Randomized tests on the coherence protocols: hit/miss invariants under
//! random access/migration traces, driven by the workspace RNG.

use olden_cache::{Access, Arrival, CacheSystem, Protocol};
use olden_rng::SplitMix64;

#[derive(Clone, Debug)]
enum Ev {
    Access {
        req: u8,
        home: u8,
        page: u64,
        line: u8,
        write: bool,
    },
    Depart {
        proc: u8,
    },
    ArriveCall {
        proc: u8,
    },
    ArriveReturn {
        proc: u8,
        written: Vec<u8>,
    },
}

/// One random event over `procs` processors, weighted 4:1:1:1 toward
/// accesses like the original proptest strategy.
fn random_event(r: &mut SplitMix64, procs: u8) -> Ev {
    match r.below(7) {
        0..=3 => loop {
            let req = r.below(procs as u64) as u8;
            let home = r.below(procs as u64) as u8;
            if req != home {
                return Ev::Access {
                    req,
                    home,
                    page: r.below(8),
                    line: r.below(32) as u8,
                    write: r.chance(0.5),
                };
            }
        },
        4 => Ev::Depart {
            proc: r.below(procs as u64) as u8,
        },
        5 => Ev::ArriveCall {
            proc: r.below(procs as u64) as u8,
        },
        _ => Ev::ArriveReturn {
            proc: r.below(procs as u64) as u8,
            written: (0..r.below(3))
                .map(|_| r.below(procs as u64) as u8)
                .collect(),
        },
    }
}

fn random_trace(r: &mut SplitMix64, procs: u8, max_len: usize) -> Vec<Ev> {
    let len = 1 + r.below(max_len as u64 - 1) as usize;
    (0..len).map(|_| random_event(r, procs)).collect()
}

/// A hit can only happen to a line that was fetched earlier and not
/// invalidated since — modelled independently with a set per
/// protocol-specific invalidation rule for the *local* scheme (the only
/// scheme whose invalidations are locally decidable).
#[test]
fn local_knowledge_hits_match_model() {
    let mut r = SplitMix64::new(0xCAC4E);
    for _ in 0..256 {
        let evs = random_trace(&mut r, 4, 80);
        let mut sys = CacheSystem::new(4, Protocol::LocalKnowledge);
        use std::collections::HashSet;
        let mut model: Vec<HashSet<(u8, u64, u8)>> = vec![HashSet::new(); 4];
        for ev in &evs {
            match ev {
                Ev::Access {
                    req,
                    home,
                    page,
                    line,
                    write,
                } => {
                    let key = (*home, *page, *line);
                    let expect_hit = model[*req as usize].contains(&key);
                    let got = sys.access(*req, *home, *page, *line, *write);
                    assert_eq!(matches!(got, Access::Hit), expect_hit, "access {:?}", ev);
                    model[*req as usize].insert(key);
                    if *write {
                        sys.note_write(*req, *home, *page, *line);
                    }
                }
                Ev::Depart { proc } => {
                    sys.depart(*proc, 30);
                }
                Ev::ArriveCall { proc } => {
                    sys.arrive(*proc, Arrival::Call);
                    model[*proc as usize].clear();
                }
                Ev::ArriveReturn { proc, written } => {
                    sys.arrive(
                        *proc,
                        Arrival::Return {
                            written_homes: written,
                        },
                    );
                    model[*proc as usize].retain(|(h, _, _)| !written.contains(h));
                }
            }
        }
        // Counter consistency.
        let s = sys.stats();
        assert_eq!(s.hits + s.misses, s.remote_reads + s.remote_writes);
    }
}

/// Under every protocol, immediately repeating an access hits.
#[test]
fn repeat_access_always_hits() {
    let mut r = SplitMix64::new(0xCAC4F);
    for _ in 0..256 {
        let proto = Protocol::ALL[r.below(3) as usize];
        let (req, home) = loop {
            let req = r.below(4) as u8;
            let home = r.below(4) as u8;
            if req != home {
                break (req, home);
            }
        };
        let page = r.below(16);
        let line = r.below(32) as u8;
        let mut sys = CacheSystem::new(4, proto);
        sys.access(req, home, page, line, false);
        assert_eq!(sys.access(req, home, page, line, false), Access::Hit);
    }
}

/// Pages-ever-cached is monotone and bounded by misses (each page
/// allocation is triggered by a miss).
#[test]
fn pages_bounded_by_misses() {
    let mut r = SplitMix64::new(0xCAC50);
    for _ in 0..128 {
        let evs = random_trace(&mut r, 4, 60);
        for proto in Protocol::ALL {
            let mut sys = CacheSystem::new(4, proto);
            for ev in &evs {
                if let Ev::Access {
                    req,
                    home,
                    page,
                    line,
                    write,
                } = ev
                {
                    sys.access(*req, *home, *page, *line, *write);
                }
            }
            assert!(sys.pages_cached() <= sys.stats().misses);
        }
    }
}
