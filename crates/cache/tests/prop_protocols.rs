//! Property tests on the coherence protocols: hit/miss invariants under
//! random access/migration traces.

use olden_cache::{Access, Arrival, CacheSystem, Protocol};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Ev {
    Access { req: u8, home: u8, page: u64, line: u8, write: bool },
    Depart { proc: u8 },
    ArriveCall { proc: u8 },
    ArriveReturn { proc: u8, written: Vec<u8> },
}

fn ev_strategy(procs: u8) -> impl Strategy<Value = Ev> {
    prop_oneof![
        4 => (0..procs, 0..procs, 0u64..8, 0u8..32, any::<bool>()).prop_filter_map(
            "self access",
            |(req, home, page, line, write)| {
                (req != home).then_some(Ev::Access { req, home, page, line, write })
            }
        ),
        1 => (0..procs).prop_map(|proc| Ev::Depart { proc }),
        1 => (0..procs).prop_map(|proc| Ev::ArriveCall { proc }),
        1 => (0..procs, prop::collection::vec(0..procs, 0..3))
            .prop_map(|(proc, written)| Ev::ArriveReturn { proc, written }),
    ]
}

proptest! {
    /// A hit can only happen to a line that was fetched earlier and not
    /// invalidated since — modelled independently with a set per
    /// protocol-specific invalidation rule for the *local* scheme (the
    /// only scheme whose invalidations are locally decidable).
    #[test]
    fn local_knowledge_hits_match_model(evs in prop::collection::vec(ev_strategy(4), 1..80)) {
        let mut sys = CacheSystem::new(4, Protocol::LocalKnowledge);
        use std::collections::HashSet;
        let mut model: Vec<HashSet<(u8, u64, u8)>> = vec![HashSet::new(); 4];
        for ev in &evs {
            match ev {
                Ev::Access { req, home, page, line, write } => {
                    let key = (*home, *page, *line);
                    let expect_hit = model[*req as usize].contains(&key);
                    let got = sys.access(*req, *home, *page, *line, *write);
                    prop_assert_eq!(
                        matches!(got, Access::Hit),
                        expect_hit,
                        "access {:?}", ev
                    );
                    model[*req as usize].insert(key);
                    if *write {
                        sys.note_write(*req, *home, *page, *line);
                    }
                }
                Ev::Depart { proc } => {
                    sys.depart(*proc, 30);
                }
                Ev::ArriveCall { proc } => {
                    sys.arrive(*proc, Arrival::Call);
                    model[*proc as usize].clear();
                }
                Ev::ArriveReturn { proc, written } => {
                    sys.arrive(*proc, Arrival::Return { written_homes: written });
                    model[*proc as usize].retain(|(h, _, _)| !written.contains(h));
                }
            }
        }
        // Counter consistency.
        let s = sys.stats();
        prop_assert_eq!(s.hits + s.misses, s.remote_reads + s.remote_writes);
    }

    /// Under every protocol, immediately repeating an access hits.
    #[test]
    fn repeat_access_always_hits(
        proto_idx in 0usize..3,
        req in 0u8..4,
        home in 0u8..4,
        page in 0u64..16,
        line in 0u8..32,
    ) {
        prop_assume!(req != home);
        let mut sys = CacheSystem::new(4, Protocol::ALL[proto_idx]);
        sys.access(req, home, page, line, false);
        prop_assert_eq!(sys.access(req, home, page, line, false), Access::Hit);
    }

    /// Pages-ever-cached is monotone and bounded by misses (each page
    /// allocation is triggered by a miss).
    #[test]
    fn pages_bounded_by_misses(evs in prop::collection::vec(ev_strategy(4), 1..60)) {
        for proto in Protocol::ALL {
            let mut sys = CacheSystem::new(4, proto);
            for ev in &evs {
                if let Ev::Access { req, home, page, line, write } = ev {
                    sys.access(*req, *home, *page, *line, *write);
                }
            }
            prop_assert!(sys.pages_cached() <= sys.stats().misses);
        }
    }
}
