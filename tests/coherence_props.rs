//! Randomized tests on the coherence protocols and the scheduler: random
//! access/migration traces must preserve sequential-consistency
//! observations under every protocol, and replay must respect bounds.

use olden_core::prelude::*;
use olden_rng::SplitMix64;

/// A tiny random program: a sequence of operations over a handful of
/// heap cells spread across processors.
#[derive(Clone, Debug)]
enum Op {
    Write { cell: u8, val: i64, mech: bool },
    Read { cell: u8, mech: bool },
    Call { ops: Vec<Op> },
}

/// One random op; `depth` bounds `Call` nesting like the original
/// recursive proptest strategy did.
fn random_op(r: &mut SplitMix64, depth: u32) -> Op {
    let kind = if depth == 0 { r.below(2) } else { r.below(3) };
    match kind {
        0 => Op::Write {
            cell: r.below(8) as u8,
            val: r.next_u64() as i64,
            mech: r.chance(0.5),
        },
        1 => Op::Read {
            cell: r.below(8) as u8,
            mech: r.chance(0.5),
        },
        _ => Op::Call {
            ops: (0..r.range(1, 4))
                .map(|_| random_op(r, depth - 1))
                .collect(),
        },
    }
}

fn random_ops(r: &mut SplitMix64, depth: u32, max_len: usize) -> Vec<Op> {
    (0..r.range(1, max_len))
        .map(|_| random_op(r, depth))
        .collect()
}

fn mech(b: bool) -> Mechanism {
    if b {
        Mechanism::Migrate
    } else {
        Mechanism::Cache
    }
}

fn exec(ctx: &mut OldenCtx, cells: &[GPtr], ops: &[Op], log: &mut Vec<i64>) {
    for op in ops {
        match op {
            Op::Write { cell, val, mech: m } => {
                ctx.write(cells[*cell as usize], 0, *val, mech(*m));
            }
            Op::Read { cell, mech: m } => {
                log.push(ctx.read_i64(cells[*cell as usize], 0, mech(*m)));
            }
            Op::Call { ops } => ctx.call(|ctx| exec(ctx, cells, ops, log)),
        }
    }
}

fn model_exec(model: &mut [i64; 8], ops: &[Op], out: &mut Vec<i64>) {
    for op in ops {
        match op {
            Op::Write { cell, val, .. } => model[*cell as usize] = *val,
            Op::Read { cell, .. } => out.push(model[*cell as usize]),
            Op::Call { ops } => model_exec(model, ops, out),
        }
    }
}

/// All three protocols (and both mechanisms) observe the same values as a
/// direct sequential interpretation: the release-consistency argument of
/// Appendix A, exercised mechanically.
#[test]
fn protocols_are_observationally_sequential() {
    let mut r = SplitMix64::new(0xC0DE5);
    for _ in 0..64 {
        let ops = random_ops(&mut r, 2, 24);
        let procs = r.range(1, 6);

        // Direct model: last write wins.
        let mut model = [0i64; 8];
        let mut expect = Vec::new();
        model_exec(&mut model, &ops, &mut expect);

        for proto in [
            Protocol::LocalKnowledge,
            Protocol::GlobalKnowledge,
            Protocol::Bilateral,
        ] {
            let (log, rep) = run(Config::olden(procs).with_protocol(proto), |ctx| {
                let cells: Vec<GPtr> = (0..8)
                    .map(|i| ctx.alloc((i % procs) as ProcId, 1))
                    .collect();
                let mut log = Vec::new();
                exec(ctx, &cells, &ops, &mut log);
                log
            });
            assert_eq!(log, expect, "protocol {}", proto.name());
            assert!(rep.makespan >= rep.critical_path);
            assert!(
                rep.makespan <= rep.total_work + 64 * 5000,
                "makespan cannot exceed serialized work plus latencies"
            );
        }
    }
}

/// Wrong path-affinity hints never change values (§4.1), only time.
#[test]
fn hints_affect_time_never_values() {
    let mut r = SplitMix64::new(0xC0DE6);
    for _ in 0..64 {
        let ops = random_ops(&mut r, 1, 16);
        let run_with = |force: Option<Mechanism>| {
            let mut cfg = Config::olden(4);
            cfg.force = force;
            run(cfg, |ctx| {
                let cells: Vec<GPtr> = (0..8).map(|i| ctx.alloc(i % 4, 1)).collect();
                let mut log = Vec::new();
                exec(ctx, &cells, &ops, &mut log);
                log
            })
            .0
        };
        let base = run_with(None);
        assert_eq!(run_with(Some(Mechanism::Migrate)), base);
        assert_eq!(run_with(Some(Mechanism::Cache)), base);
    }
}
