//! Property tests on the coherence protocols and the scheduler: random
//! access/migration traces must preserve sequential-consistency
//! observations under every protocol, and replay must respect bounds.

use olden_core::prelude::*;
use proptest::prelude::*;

/// A tiny random program: a sequence of operations over a handful of
/// heap cells spread across processors.
#[derive(Clone, Debug)]
enum Op {
    Write { cell: u8, val: i64, mech: bool },
    Read { cell: u8, mech: bool },
    Call { ops: Vec<Op> },
}

fn op_strategy(depth: u32) -> impl Strategy<Value = Op> {
    let leaf = prop_oneof![
        (0u8..8, any::<i64>(), any::<bool>())
            .prop_map(|(cell, val, mech)| Op::Write { cell, val, mech }),
        (0u8..8, any::<bool>()).prop_map(|(cell, mech)| Op::Read { cell, mech }),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop::collection::vec(inner, 1..4).prop_map(|ops| Op::Call { ops })
    })
}

fn mech(b: bool) -> Mechanism {
    if b {
        Mechanism::Migrate
    } else {
        Mechanism::Cache
    }
}

fn exec(ctx: &mut OldenCtx, cells: &[GPtr], ops: &[Op], log: &mut Vec<i64>) {
    for op in ops {
        match op {
            Op::Write { cell, val, mech: m } => {
                ctx.write(cells[*cell as usize], 0, *val, mech(*m));
            }
            Op::Read { cell, mech: m } => {
                log.push(ctx.read_i64(cells[*cell as usize], 0, mech(*m)));
            }
            Op::Call { ops } => ctx.call(|ctx| exec(ctx, cells, ops, log)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three protocols (and both mechanisms) observe the same values
    /// as a direct sequential interpretation: the release-consistency
    /// argument of Appendix A, exercised mechanically.
    #[test]
    fn protocols_are_observationally_sequential(
        ops in prop::collection::vec(op_strategy(2), 1..24),
        procs in 1usize..6,
    ) {
        // Direct model: last write wins.
        let mut model = [0i64; 8];
        let mut expect = Vec::new();
        fn model_exec(model: &mut [i64; 8], ops: &[Op], out: &mut Vec<i64>) {
            for op in ops {
                match op {
                    Op::Write { cell, val, .. } => model[*cell as usize] = *val,
                    Op::Read { cell, .. } => out.push(model[*cell as usize]),
                    Op::Call { ops } => model_exec(model, ops, out),
                }
            }
        }
        model_exec(&mut model, &ops, &mut expect);

        for proto in [Protocol::LocalKnowledge, Protocol::GlobalKnowledge, Protocol::Bilateral] {
            let (log, rep) = run(Config::olden(procs).with_protocol(proto), |ctx| {
                let cells: Vec<GPtr> = (0..8)
                    .map(|i| ctx.alloc((i % procs) as ProcId, 1))
                    .collect();
                let mut log = Vec::new();
                exec(ctx, &cells, &ops, &mut log);
                log
            });
            prop_assert_eq!(&log, &expect, "protocol {}", proto.name());
            prop_assert!(rep.makespan >= rep.critical_path);
            prop_assert!(rep.makespan <= rep.total_work + 64 * 5000,
                "makespan cannot exceed serialized work plus latencies");
        }
    }

    /// Wrong path-affinity hints never change values (§4.1), only time.
    #[test]
    fn hints_affect_time_never_values(
        ops in prop::collection::vec(op_strategy(1), 1..16),
    ) {
        let run_with = |force: Option<Mechanism>| {
            let mut cfg = Config::olden(4);
            cfg.force = force;
            run(cfg, |ctx| {
                let cells: Vec<GPtr> = (0..8).map(|i| ctx.alloc(i % 4, 1)).collect();
                let mut log = Vec::new();
                exec(ctx, &cells, &ops, &mut log);
                log
            })
            .0
        };
        let base = run_with(None);
        prop_assert_eq!(run_with(Some(Mechanism::Migrate)), base.clone());
        prop_assert_eq!(run_with(Some(Mechanism::Cache)), base);
    }
}
