//! Cross-crate integration: every benchmark's distributed execution
//! matches its serial reference at several machine sizes and under every
//! coherence protocol.

use olden_core::benchmarks::{self, SizeClass};
use olden_core::prelude::*;

#[test]
fn all_benchmarks_match_references_across_machines() {
    for d in benchmarks::all() {
        let expect = (d.reference)(SizeClass::Tiny);
        for procs in [1usize, 3, 8] {
            let (v, _) = run(Config::olden(procs), |ctx| (d.run)(ctx, SizeClass::Tiny));
            assert_eq!(v, expect, "{} at {procs} processors", d.name);
        }
        let (v, _) = run(Config::sequential(), |ctx| (d.run)(ctx, SizeClass::Tiny));
        assert_eq!(v, expect, "{} sequential baseline", d.name);
    }
}

#[test]
fn all_benchmarks_survive_forced_mechanisms() {
    // Mechanism choice (even a bad one) must never change computed values
    // — the paper's correctness-independence claim (§4.1).
    for d in benchmarks::all() {
        let expect = (d.reference)(SizeClass::Tiny);
        for force in [Mechanism::Migrate, Mechanism::Cache] {
            let (v, _) = run(Config::olden(4).forced(force), |ctx| {
                (d.run)(ctx, SizeClass::Tiny)
            });
            assert_eq!(v, expect, "{} forced {}", d.name, force.name());
        }
    }
}

#[test]
fn all_protocols_agree_on_every_benchmark() {
    for d in benchmarks::all() {
        let expect = (d.reference)(SizeClass::Tiny);
        for proto in [
            Protocol::LocalKnowledge,
            Protocol::GlobalKnowledge,
            Protocol::Bilateral,
        ] {
            let (v, _) = run(Config::olden(6).with_protocol(proto), |ctx| {
                (d.run)(ctx, SizeClass::Tiny)
            });
            assert_eq!(v, expect, "{} under {}", d.name, proto.name());
        }
    }
}

#[test]
fn makespan_respects_lower_bounds_everywhere() {
    for d in benchmarks::all() {
        let (_, rep) = run(Config::olden(4), |ctx| (d.run)(ctx, SizeClass::Tiny));
        assert!(
            rep.makespan >= rep.critical_path,
            "{}: makespan {} < critical path {}",
            d.name,
            rep.makespan,
            rep.critical_path
        );
        assert!(
            (rep.makespan as f64) >= rep.total_work as f64 / 4.0,
            "{}: makespan below work/P",
            d.name
        );
    }
}
