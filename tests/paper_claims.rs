//! End-to-end checks of the paper's headline claims, at test-friendly
//! sizes (EXPERIMENTS.md records the full-size tables).

use olden_core::benchmarks::{self, SizeClass};
use olden_core::prelude::*;

fn speedup(d: &benchmarks::Descriptor, cfg: Config, size: SizeClass, seq: u64) -> f64 {
    let (_, rep) = run(cfg, |ctx| (d.run)(ctx, size));
    rep.speedup_vs(seq)
}

#[test]
fn heuristic_choices_match_table2_column() {
    // Table 2's "Heuristic choice": M for TreeAdd/Power/TSP/MST, M+C for
    // the rest. The per-benchmark DSL tests pin the per-variable choices;
    // here we check the registry column survives.
    let names_m: Vec<&str> = benchmarks::all()
        .iter()
        .filter(|d| d.choice == "M")
        .map(|d| d.name)
        .collect();
    assert_eq!(names_m, ["TreeAdd", "Power", "TSP", "MST"]);
}

#[test]
fn em3d_and_voronoi_migrate_only_collapse() {
    // Table 2's migrate-only column: EM3D 0.05, Voronoi 0.47, versus
    // 12.0 and 8.76 with the heuristic.
    for name in ["EM3D", "Voronoi"] {
        let d = benchmarks::by_name(name).unwrap();
        let (_, seq) = run(Config::sequential(), |ctx| (d.run)(ctx, SizeClass::Default));
        let h = speedup(&d, Config::olden(8), SizeClass::Default, seq.makespan);
        let m = speedup(
            &d,
            Config::olden(8).forced(Mechanism::Migrate),
            SizeClass::Default,
            seq.makespan,
        );
        assert!(m < h / 2.0, "{name}: migrate-only {m} vs heuristic {h}");
        assert!(
            m < 1.0,
            "{name}: migrate-only must lose to sequential ({m})"
        );
    }
}

#[test]
fn treeadd_scales_and_mst_saturates() {
    let treeadd = benchmarks::by_name("TreeAdd").unwrap();
    let (_, seq) = run(Config::sequential(), |ctx| {
        (treeadd.run)(ctx, SizeClass::Default)
    });
    let s8 = speedup(&treeadd, Config::olden(8), SizeClass::Default, seq.makespan);
    assert!(s8 > 4.0, "TreeAdd at 8 procs: {s8}");

    let mst = benchmarks::by_name("MST").unwrap();
    let (_, seq) = run(Config::sequential(), |ctx| {
        (mst.run)(ctx, SizeClass::Default)
    });
    let s8 = speedup(&mst, Config::olden(8), SizeClass::Default, seq.makespan);
    let s32 = speedup(&mst, Config::olden(32), SizeClass::Default, seq.makespan);
    assert!(
        s32 / 32.0 < s8 / 8.0,
        "MST efficiency must degrade with P (O(N·P) migrations): {s8}@8 {s32}@32"
    );
}

#[test]
fn one_processor_overhead_band() {
    // Table 2's 1-processor column sits between 0.48 and 1.0: Olden's
    // pointer tests and future bookkeeping cost something but not
    // everything.
    for d in benchmarks::all() {
        let (_, seq) = run(Config::sequential(), |ctx| (d.run)(ctx, SizeClass::Tiny));
        let s1 = speedup(&d, Config::olden(1), SizeClass::Tiny, seq.makespan);
        assert!(
            (0.4..=1.02).contains(&s1),
            "{}: 1-processor speedup {s1} outside the overhead band",
            d.name
        );
    }
}

#[test]
fn break_even_affinity_is_about_86_percent() {
    // §4 footnote 3.
    let b = CostModel::cm5().breakeven_affinity();
    assert!((0.84..=0.88).contains(&b));
}

#[test]
fn local_knowledge_wins_on_health() {
    // Appendix A: "the local knowledge scheme has the best running times
    // for our benchmark suite" — demonstrated on Health, whose write
    // tracking is pure overhead for the other two schemes.
    let d = benchmarks::by_name("Health").unwrap();
    let time = |proto| {
        let (_, rep) = run(Config::olden(8).with_protocol(proto), |ctx| {
            (d.run)(ctx, SizeClass::Default)
        });
        rep.makespan
    };
    let local = time(Protocol::LocalKnowledge);
    let global = time(Protocol::GlobalKnowledge);
    let bilateral = time(Protocol::Bilateral);
    assert!(local <= global, "local {local} vs global {global}");
    assert!(local <= bilateral, "local {local} vs bilateral {bilateral}");
}
