// Seed repro corpus: a list walk with an in-loop spawn/touch (the MST
// sweep shape) plus a release through the spine.
struct block {
    block *next @ 95;
    int weight;
};

int Scan(block *b) {
    return b->weight;
}

int Sweep(block *b) {
    int best = 0;
    while (b != null) {
        int m = futurecall Scan(b);
        touch m;
        if (m < best) {
            best = m;
        }
        b->weight = best;
        b = b->next;
    }
    return best;
}
