// Seed repro corpus: nested control loops over two structures with a
// multi-field path product — the update-matrix multi-base case.
struct row {
    row *down @ 80;
    cell *first @ 60;
    int id;
};

struct cell {
    cell *next @ 85;
    int val;
};

int Sum(row *r) {
    int total = 0;
    while (r != null) {
        cell *c = r->first;
        while (c != null) {
            total = total + c->val;
            c = c->next;
        }
        total = total + r->first->val;
        r = r->down;
    }
    return total;
}
