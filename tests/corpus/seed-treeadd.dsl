// Seed repro corpus: the Figure 4 shape (spawn one arm as a future,
// recurse the other, touch, combine). Replayed by
// crates/exec/tests/verify_fuzz.rs to pin the source-level oracles.
struct tree {
    tree *left @ 90;
    tree *right @ 70;
    int val;
};

int TreeAdd(tree *t) {
    if (t == null) {
        return 0;
    }
    int lv = futurecall TreeAdd(t->left);
    int rv = TreeAdd(t->right);
    touch lv;
    return lv + rv + t->val;
}
