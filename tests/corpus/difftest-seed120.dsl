// Shrunk by `oldenc difftest` from generated seed 120: with input data
// built per-function (interleaved with execution), g2's root was
// allocated after g1's reads had cached a line, and on the thread
// backend's heap layout — unlike the simulator's — the new object
// shared that line, so g2's cached read saw the stale pre-build
// snapshot and returned null where the simulator returned a pointer.
// Fixed by building every function's inputs before any function runs
// (interp's build phase); kept as a differential regression anchor.
struct s0 {
    s0 *f0;
    int v0;
};

int g0(s0 *p0) {
}

s0 *g1(s0 *p0) {
    p0 = p0->f0;
    l1 = p0->v0;
}

s0 *g2(s0 *p0, s0 *p1) {
    p0 = p0->f0;
    return p0->f0;
}
