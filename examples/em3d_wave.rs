//! EM3D: electromagnetic-wave propagation on a bipartite graph — the
//! paper's showcase for *combining* mechanisms. The node lists migrate
//! (high locality), the edges cache (low locality); forcing everything
//! to migration reproduces Table 2's collapse (0.05 at 32 processors).
//!
//! Run with: `cargo run --release --example em3d_wave`

use olden_core::benchmarks::{em3d, SizeClass};
use olden_core::prelude::*;

fn main() {
    let size = SizeClass::Default;
    let (_, seq) = run(Config::sequential(), |ctx| em3d::run(ctx, size));
    println!("sequential makespan: {} cycles", seq.makespan);
    println!(
        "\n{:>6} {:>11} {:>13} {:>9}",
        "procs", "heuristic", "migrate-only", "misses"
    );
    for p in [1usize, 2, 4, 8, 16, 32] {
        let (_, h) = run(Config::olden(p), |ctx| em3d::run(ctx, size));
        let (_, m) = run(Config::olden(p).forced(Mechanism::Migrate), |ctx| {
            em3d::run(ctx, size)
        });
        println!(
            "{p:>6} {:>11.2} {:>13.2} {:>9}",
            h.speedup_vs(seq.makespan),
            m.speedup_vs(seq.makespan),
            h.cache.misses
        );
    }
    println!("\nThe migrate-only column ping-pongs the thread across the");
    println!("machine on every remote edge — the paper's EM3D row shows the");
    println!("same collapse (12.0 with the heuristic vs 0.05 migrate-only).");
}
