//! Health: the Columbian health-care simulation, showing the coherence
//! protocols of Appendix A side by side. Health's referred patients are
//! the paper's example of data that *crosses* processors through lists —
//! yet fewer than ~2% of list items are remote, so the coarse
//! local-knowledge scheme wins despite invalidating everything.
//!
//! Run with: `cargo run --release --example health_sim`

use olden_core::benchmarks::{health, SizeClass};
use olden_core::prelude::*;

fn main() {
    let size = SizeClass::Default;
    let procs = 16;
    println!("Health on {procs} simulated processors, one run per protocol\n");
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>12} {:>10}",
        "protocol", "makespan", "hits", "misses", "track-cycles", "pages"
    );
    for proto in [
        Protocol::LocalKnowledge,
        Protocol::GlobalKnowledge,
        Protocol::Bilateral,
    ] {
        let (v, rep) = run(Config::olden(procs).with_protocol(proto), |ctx| {
            health::run(ctx, size)
        });
        assert_eq!(v, health::reference(size), "all protocols agree on values");
        println!(
            "{:<10} {:>10} {:>8} {:>8} {:>12} {:>10}",
            proto.name(),
            rep.makespan,
            rep.cache.hits,
            rep.cache.misses,
            rep.cache.write_track_cycles,
            rep.pages_cached
        );
    }
    println!("\nAll three protocols compute identical results (release");
    println!("consistency over Olden's future semantics); they differ only");
    println!("in invalidation traffic and write-tracking overhead — the");
    println!("paper's Appendix A comparison.");
}
