//! A tour of the paper's §4: parse the figures' code in the restricted-C
//! DSL, print update matrices, and watch the two-pass heuristic choose.
//!
//! Run with: `cargo run --example heuristic_tour`

use olden_core::prelude::*;

fn main() {
    // Figure 3: a loop with induction variables.
    let fig3 = r#"
        struct node { node *left @ 90; node *right @ 70; };
        void f(node *s, node *t, node *u) {
            while (s) {
                s = s->left;
                t = t->right->left;
                u = s->right;
            }
        }
    "#;
    let prog = parse(fig3).unwrap();
    let sel = select(&prog);
    println!("=== Figure 3 ===");
    let lp = &sel.for_func("f")[0];
    let m = sel.matrix(lp.loop_id);
    println!(
        "update matrix: (s,s)={:?} (t,t)={:?} (u,s)={:?} (u,u)={:?}",
        m.get("s", "s"),
        m.get("t", "t"),
        m.get("u", "s"),
        m.get("u", "u")
    );
    println!("{}", sel.describe());

    // Figure 4: TreeAdd's recursion combines 90% and 70% into 97%.
    let fig4 = r#"
        struct tree { tree *left @ 90; tree *right @ 70; int val; };
        int TreeAdd(tree *t) {
            if (t == null) { return 0; }
            else { return TreeAdd(t->left) + TreeAdd(t->right) + t->val; }
        }
    "#;
    let prog = parse(fig4).unwrap();
    let sel = select(&prog);
    println!("=== Figure 4 ===");
    println!("{}", sel.describe());

    // Figure 5: the bottleneck pass.
    let fig5 = r#"
        struct list { list *next; body *item; };
        struct body { int x; };
        struct tree { tree *left; tree *right; list *items; };
        void Traverse(tree *t) {
            if (t == null) { return; }
            else { Traverse(t->left); Traverse(t->right); }
        }
        void Walk(list *l) { while (l) { visit(l); l = l->next; } }
        void WalkAndTraverse(list *l, tree *t) {
            while (l) { futurecall Traverse(t); l = l->next; }
        }
        void TraverseAndWalk(tree *t) {
            if (t == null) { return; }
            else {
                futurecall TraverseAndWalk(t->left);
                futurecall TraverseAndWalk(t->right);
                Walk(t->items);
            }
        }
    "#;
    let prog = parse(fig5).unwrap();
    let sel = select(&prog);
    println!("=== Figure 5 ===");
    println!("{}", sel.describe());
    println!("Traverse is demoted to caching: every parallel iteration of");
    println!("WalkAndTraverse passes the *same* tree root, which would");
    println!("serialize all threads on one processor (the paper's bottleneck).");
}
