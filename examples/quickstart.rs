//! Quickstart: build a distributed tree, sum it with futures and
//! migration, and watch the Table-2 machinery produce a speedup curve.
//!
//! Run with: `cargo run --release --example quickstart`

use olden_core::prelude::*;
use olden_runtime::OldenCtx;

/// Tree node fields.
const LEFT: usize = 0;
const RIGHT: usize = 1;
const VAL: usize = 2;

/// Build a tree whose subtrees are distributed across the processor
/// range, the layout advice of the paper's §2.
fn build(ctx: &mut OldenCtx, depth: u32, lo: usize, hi: usize) -> GPtr {
    if depth == 0 {
        return GPtr::NULL;
    }
    let t = ctx.alloc(lo as ProcId, 3);
    let mid = usize::midpoint(lo, hi);
    let (llo, lhi, rlo, rhi) = if hi - lo <= 1 {
        (lo, hi, lo, hi)
    } else {
        (mid, hi, lo, mid) // left child remote: its future forks
    };
    let l = build(ctx, depth - 1, llo, lhi);
    let r = build(ctx, depth - 1, rlo, rhi);
    ctx.write(t, LEFT, l, Mechanism::Migrate);
    ctx.write(t, RIGHT, r, Mechanism::Migrate);
    ctx.write(t, VAL, 1i64, Mechanism::Migrate);
    t
}

/// The paper's Figure-4 kernel: futurecall on the left child, recursion
/// on the right, dereferences of `t` migrating (the heuristic's choice).
fn tree_add(ctx: &mut OldenCtx, t: GPtr) -> i64 {
    if t.is_null() {
        return 0;
    }
    ctx.work(70);
    let left = ctx.read_ptr(t, LEFT, Mechanism::Migrate);
    let h = ctx.future_call(|ctx| ctx.call(|ctx| tree_add(ctx, left)));
    let right = ctx.read_ptr(t, RIGHT, Mechanism::Migrate);
    let rv = ctx.call(|ctx| tree_add(ctx, right));
    let v = ctx.read_i64(t, VAL, Mechanism::Migrate);
    ctx.touch(h) + rv + v
}

fn main() {
    const DEPTH: u32 = 14; // 16 383 nodes

    let program = |ctx: &mut OldenCtx| {
        let n = ctx.nprocs();
        let root = ctx.uncharged(|ctx| build(ctx, DEPTH, 0, n));
        ctx.call(|ctx| tree_add(ctx, root))
    };

    // Verify the value once.
    let (sum, _) = run(Config::olden(4), program);
    assert_eq!(sum, (1 << DEPTH) - 1);
    println!("TreeAdd of {} nodes = {}", (1 << DEPTH) - 1, sum);

    // Speedups against the no-overhead sequential baseline (paper §5).
    println!("\n{:>6} {:>9}", "procs", "speedup");
    for (p, s) in speedup_curve(
        |ctx| {
            program(ctx);
        },
        &[1, 2, 4, 8, 16, 32],
        Config::olden,
    ) {
        println!("{p:>6} {s:>9.2}");
    }
}
